//! Canon ISA: instruction format and unified address space (§3.1).
//!
//! The paper's instruction format is
//!
//! ```text
//! <inst> ::= <op> <op1_addr> <op2_addr> <res_addr>
//! ```
//!
//! with the scratchpad, data memory, router ports and SIMD registers sharing
//! a unified address space: which structure an access touches is inferred
//! from the address ([`Addr`]). Two additional fields model aspects the paper
//! describes but does not put into the four-field format:
//!
//! * [`Instruction::imm`] — the operand streamed from the west edge alongside
//!   the instruction (the `From WEST` input in Fig 4; e.g. the non-zero value
//!   of `A` in SpMM). It travels with the staggered instruction, which is
//!   timing-equivalent to a west-to-east data stream.
//! * [`Instruction::route`] — the router pass-through configuration
//!   (`ROUTER_CONF` in Fig 4), e.g. `NORTH_TO_SOUTH` for the psum bypass of
//!   the SpMM FSM (Listing 1). A pass-through moves a NoC entry without
//!   involving the vector lane and may ride along any instruction.
//! * [`Instruction::tag`] — the row-id tag the orchestrator attaches for the
//!   edge memory movers (EDDO I/O control, §4): fabric-edge collectors use it
//!   to attribute flushed partial sums to output rows.

use canon_sparse::Value;

/// Number of lanes in the PE vector unit (Table 1: 4-SIMD).
pub const LANES: usize = 4;

/// A 4-wide SIMD value: the unit of every datapath transfer in the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Vector(pub [Value; LANES]);

impl Vector {
    /// The all-zero vector.
    pub const ZERO: Vector = Vector([0; LANES]);

    /// Builds a vector broadcasting one scalar to all lanes.
    pub fn splat(v: Value) -> Vector {
        Vector([v; LANES])
    }

    /// Builds a vector from a slice, zero-padding to [`LANES`].
    ///
    /// # Panics
    ///
    /// Panics if `s.len() > LANES`.
    pub fn from_slice(s: &[Value]) -> Vector {
        assert!(s.len() <= LANES, "slice longer than {LANES} lanes");
        let mut v = [0; LANES];
        v[..s.len()].copy_from_slice(s);
        Vector(v)
    }

    /// Elementwise sum.
    pub fn add(self, rhs: Vector) -> Vector {
        let mut out = [0; LANES];
        for i in 0..LANES {
            out[i] = self.0[i].wrapping_add(rhs.0[i]);
        }
        Vector(out)
    }

    /// Elementwise product.
    pub fn mul(self, rhs: Vector) -> Vector {
        let mut out = [0; LANES];
        for i in 0..LANES {
            out[i] = self.0[i].wrapping_mul(rhs.0[i]);
        }
        Vector(out)
    }

    /// `self + a * b` elementwise (the 4-wide MAC).
    pub fn mac(self, a: Vector, b: Vector) -> Vector {
        self.add(a.mul(b))
    }

    /// Horizontal sum of all lanes (used by the final SDDMM reduction).
    pub fn reduce_sum(self) -> Value {
        self.0.iter().copied().fold(0, Value::wrapping_add)
    }

    /// Scalar in lane 0 (scalar operands occupy lane 0 by convention).
    pub fn lane0(self) -> Value {
        self.0[0]
    }

    /// True if every lane is zero.
    pub fn is_zero(self) -> bool {
        self.0.iter().all(|&v| v == 0)
    }
}

impl From<[Value; LANES]> for Vector {
    fn from(v: [Value; LANES]) -> Self {
        Vector(v)
    }
}

/// Mesh directions for the circuit-switched NoC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Towards row 0.
    North,
    /// Towards the last row.
    South,
    /// Towards column 0.
    West,
    /// Towards the last column.
    East,
}

impl Direction {
    /// The opposite direction.
    pub fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::South => Direction::North,
            Direction::West => Direction::East,
            Direction::East => Direction::West,
        }
    }

    /// All four directions.
    pub fn all() -> [Direction; 4] {
        [
            Direction::North,
            Direction::South,
            Direction::West,
            Direction::East,
        ]
    }
}

impl std::fmt::Display for Direction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Direction::North => "North",
            Direction::South => "South",
            Direction::West => "West",
            Direction::East => "East",
        };
        write!(f, "{s}")
    }
}

/// Unified address space (§3.1): "the scratchpad, data memory, router, and
/// SIMD registers share a unified address space. The specific memory accessed
/// or NoC switching action is inferred from the address."
///
/// `PartialEq` is hand-written (semantically identical to the derive, so
/// the derived `Hash` stays consistent with it) with a forced-inline hint:
/// address comparison sits on the store-to-load forwarding scan and the
/// commit write-back dispatch, where an out-of-line call per comparison is
/// measurable.
#[allow(clippy::derived_hash_with_manual_eq)]
#[derive(Debug, Clone, Copy, Eq, Hash, Default)]
pub enum Addr {
    /// No operand / discard result. Reads as the zero vector.
    #[default]
    Null,
    /// Data-memory word (one [`Vector`] per word).
    DataMem(u16),
    /// Scratchpad entry (one [`Vector`] per entry).
    Spad(u16),
    /// SIMD register.
    Reg(u8),
    /// Router port in the given direction. Reading pops the incoming FIFO
    /// (array edges read as zero); writing pushes to the outgoing link.
    Port(Direction),
    /// The instruction's immediate ([`Instruction::imm`]) — the west-edge
    /// streamed operand. Write-invalid.
    Imm,
}

impl PartialEq for Addr {
    #[inline(always)]
    fn eq(&self, other: &Addr) -> bool {
        match (self, other) {
            (Addr::Null, Addr::Null) | (Addr::Imm, Addr::Imm) => true,
            (Addr::DataMem(a), Addr::DataMem(b)) => a == b,
            (Addr::Spad(a), Addr::Spad(b)) => a == b,
            (Addr::Reg(a), Addr::Reg(b)) => a == b,
            (Addr::Port(a), Addr::Port(b)) => a == b,
            _ => false,
        }
    }
}

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Addr::Null => write!(f, "null"),
            Addr::DataMem(a) => write!(f, "dmem[{a:#x}]"),
            Addr::Spad(a) => write!(f, "spad[{a:#x}]"),
            Addr::Reg(r) => write!(f, "r{r}"),
            Addr::Port(d) => write!(f, "port.{d}"),
            Addr::Imm => write!(f, "imm"),
        }
    }
}

/// Operation codes of the PE vector lane.
///
/// Semantics (all element-wise over [`LANES`] lanes; `res` denotes the value
/// committed to `res_addr`):
///
/// | Op | Result |
/// |---|---|
/// | `Nop` | nothing |
/// | `Mov` | `res = op1` |
/// | `MovFlush` | `res = op1`, and `op1` (scratchpad/register) is cleared to zero — the psum-flush primitive of Listing 1 / App C case 2 |
/// | `Add` | `res = op1 + op2` |
/// | `AddFlush` | `res = op1 + op2`, and `op1` is cleared — the east-going psum chain step of SDDMM |
/// | `Sub` | `res = op1 - op2` |
/// | `Mul` | `res = op1 * op2` |
/// | `MacV` | `res = res + op1 * op2` (read-modify-write vector MAC) |
/// | `MacS` | `res = res + broadcast(op1.lane0) * op2` (scalar×vector MAC: SpMM) |
/// | `Acc` | `res = res + op1` (psum accumulation) |
/// | `RedSum` | `res.lane0 = Σ lanes(op1)`, other lanes zero |
/// | `Max` / `Min` | elementwise max/min (general kernels) |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Opcode {
    /// No operation.
    #[default]
    Nop,
    /// Copy.
    Mov,
    /// Copy and clear source.
    MovFlush,
    /// Elementwise add.
    Add,
    /// Elementwise add and clear `op1`.
    AddFlush,
    /// Elementwise subtract.
    Sub,
    /// Elementwise multiply.
    Mul,
    /// Vector multiply-accumulate into `res`.
    MacV,
    /// Scalar-broadcast multiply-accumulate into `res`.
    MacS,
    /// Accumulate `op1` into `res`.
    Acc,
    /// Horizontal sum of `op1` into lane 0 of `res`.
    RedSum,
    /// Elementwise maximum.
    Max,
    /// Elementwise minimum.
    Min,
}

impl Opcode {
    /// True for opcodes that perform useful arithmetic on the vector lane
    /// (used for the compute-utilization metric).
    pub fn is_compute(self) -> bool {
        matches!(
            self,
            Opcode::Add
                | Opcode::AddFlush
                | Opcode::Sub
                | Opcode::Mul
                | Opcode::MacV
                | Opcode::MacS
                | Opcode::Acc
                | Opcode::RedSum
                | Opcode::Max
                | Opcode::Min
        )
    }

    /// True for the multiply-accumulate opcodes (the "useful MACs" the
    /// paper's utilization figures count).
    pub fn is_mac(self) -> bool {
        matches!(self, Opcode::MacV | Opcode::MacS | Opcode::Mul)
    }
}

/// A router pass-through: moves one NoC entry from the incoming FIFO of
/// `from` to the outgoing link towards `to`, preserving the entry's tag,
/// without involving the vector lane. May ride along any instruction
/// (`ROUTER_CONF`), subject to the one-transfer-per-direction-per-cycle rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Route {
    /// Input side (FIFO that is popped).
    pub from: Direction,
    /// Output side (link that is pushed).
    pub to: Direction,
}

/// One Canon instruction, as generated by an orchestrator (§3.1, §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Instruction {
    /// Vector-lane operation.
    pub op: Opcode,
    /// First operand address.
    pub op1: Addr,
    /// Second operand address.
    pub op2: Addr,
    /// Result address.
    pub res: Addr,
    /// West-edge streamed operand, if any.
    pub imm: Option<Vector>,
    /// Router pass-through riding along this instruction, if any.
    pub route: Option<Route>,
    /// Output-row tag attached to any NoC push made by `res` (used by the
    /// edge collectors; pass-through routes keep the original entry's tag).
    pub tag: u32,
}

impl Instruction {
    /// The canonical no-op.
    pub const NOP: Instruction = Instruction {
        op: Opcode::Nop,
        op1: Addr::Null,
        op2: Addr::Null,
        res: Addr::Null,
        imm: None,
        route: None,
        tag: 0,
    };

    /// Convenience constructor for a plain 4-field instruction.
    pub fn new(op: Opcode, op1: Addr, op2: Addr, res: Addr) -> Instruction {
        Instruction {
            op,
            op1,
            op2,
            res,
            ..Instruction::NOP
        }
    }

    /// Sets the immediate (builder style).
    pub fn with_imm(mut self, imm: Vector) -> Instruction {
        self.imm = Some(imm);
        self
    }

    /// Sets the route pass-through (builder style).
    pub fn with_route(mut self, from: Direction, to: Direction) -> Instruction {
        self.route = Some(Route { from, to });
        self
    }

    /// Sets the collector tag (builder style).
    pub fn with_tag(mut self, tag: u32) -> Instruction {
        self.tag = tag;
        self
    }

    /// True when committing this instruction drives the outgoing link
    /// towards `d`: a `Port(d)` result address or a pass-through route with
    /// output side `d`. This is the orchestrators' credit-accounting view
    /// and the fabric's wake-propagation view (a `Nop` result never
    /// actually pushes, but conservatively claims the direction — exactly
    /// what the credit protocol has always assumed).
    pub fn pushes_toward(&self, d: Direction) -> bool {
        self.res == Addr::Port(d) || self.route.is_some_and(|r| r.to == d)
    }

    /// True when loading this instruction pops the incoming link from `d`
    /// (an operand port read or a pass-through route with input side `d`).
    pub fn pops_from(&self, d: Direction) -> bool {
        matches!(self.op1, Addr::Port(x) if x == d)
            || matches!(self.op2, Addr::Port(x) if x == d)
            || self.route.is_some_and(|r| r.from == d)
    }

    /// True for the canonical bubble: a `Nop` with null operands, null
    /// result, and no route — what orchestrators emit for stalls and row
    /// ends. Bubbles read nothing, write nothing, push nothing, and cannot
    /// forward a value, so the pipeline and the injection network can move
    /// them as a one-byte state tag instead of a full instruction record.
    pub fn is_plain_nop(&self) -> bool {
        self.op == Opcode::Nop
            && self.op1 == Addr::Null
            && self.op2 == Addr::Null
            && self.res == Addr::Null
            && self.route.is_none()
    }

    /// Validates the §3.1 compile-time restriction: an instruction must not
    /// read from and write to the same NoC direction (including its route).
    ///
    /// Returns the offending direction on violation.
    #[inline]
    pub fn noc_conflict(&self) -> Option<Direction> {
        // Port-free fast path: most compute instructions (dmem/spad/register
        // operands) touch no router direction at all.
        if self.route.is_none()
            && !matches!(self.op1, Addr::Port(_))
            && !matches!(self.op2, Addr::Port(_))
            && !matches!(self.res, Addr::Port(_))
        {
            return None;
        }
        // At most 3 reads (op1, op2, route input) and 2 writes (res, route
        // output) exist, so fixed on-stack arrays suffice — this check runs
        // at every LOAD and must not allocate.
        let mut op_reads = [None::<Direction>; 3];
        let mut n_reads = 0;
        let mut writes = [None::<Direction>; 2];
        let mut n_writes = 0;
        for a in [self.op1, self.op2] {
            if let Addr::Port(d) = a {
                op_reads[n_reads] = Some(d);
                n_reads += 1;
            }
        }
        if let Addr::Port(d) = self.res {
            writes[n_writes] = Some(d);
            n_writes += 1;
        }
        if let Some(r) = self.route {
            writes[n_writes] = Some(r.to);
            n_writes += 1;
            // A route input shared with an operand port is a single pop
            // feeding both (legal); an *additional* distinct pop is a read.
            if !op_reads[..n_reads].contains(&Some(r.from)) {
                op_reads[n_reads] = Some(r.from);
                n_reads += 1;
            }
        }
        let (op_reads, writes) = (&op_reads[..n_reads], &writes[..n_writes]);
        for &r in op_reads {
            if writes.contains(&r) {
                return r;
            }
        }
        // Forbid double-driving one direction (two operand pops or two
        // pushes).
        for (i, &a) in op_reads.iter().enumerate() {
            if op_reads[i + 1..].contains(&a) {
                return a;
            }
        }
        for (i, &a) in writes.iter().enumerate() {
            if writes[i + 1..].contains(&a) {
                return a;
            }
        }
        None
    }
}

/// A 4-byte reference to an instruction interned in an [`InstrRing`].
///
/// The staggered instruction network re-delivers the *same* issued
/// instruction to every column of a row (§2.1), so the record is stored
/// once at issue and everything downstream — the injection queue, the
/// pipeline-stage slots, eastward forwarding at COMMIT — moves this handle
/// instead of the ~44-byte [`Instruction`].
///
/// The handle is the ring's monotone intern counter; the slot index is the
/// counter masked by the ring size. Under `debug_assertions` every slot
/// remembers the counter that last wrote it, and resolving a handle whose
/// slot has since been reused panics (a stale handle means the ring was
/// undersized or an instruction outlived its architectural window). Release
/// builds carry no tag storage and no check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InstrHandle(u32);

impl InstrHandle {
    /// The raw intern counter — a stable per-issue id within a run, used by
    /// the trace layer to correlate issue and commit events.
    pub fn id(self) -> u32 {
        self.0
    }
}

/// The execution plan of an interned instruction, decoded **once at
/// issue**. Every column of a row re-executes the same issue (the
/// time-lapsed SIMD stagger), so per-issue decode work — operand-kind
/// dispatch, route/flush classification, §3.1 validation implied by shape —
/// is hoisted out of the per-PE LOAD/COMMIT into [`InstrRing::intern`].
///
/// The fast-path variants carry everything their LOAD and COMMIT need
/// inline (local addresses, the broadcast immediate), so executing them
/// reads one plan record and never touches the full [`Instruction`]; the
/// paper's kernel FSMs issue them for the overwhelming majority of compute
/// cycles (the MAC streams of SpMM, GEMM/N:M, and SDDMM). Everything else
/// — port reads, flushes, routes, rare opcodes — takes [`Plan::Generic`],
/// the original fully-general path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Plan {
    /// `MacS Imm, DataMem(a) → Spad(b)` with no route (SpMM's MAC).
    MacSToSpad {
        /// Data-memory word of the stationary operand.
        a: u16,
        /// Scratchpad accumulator slot.
        b: u16,
        /// Broadcast scalar (lane 0 by convention, pre-splatted).
        imm: Vector,
    },
    /// `MacS Imm, DataMem(a) → Reg(r)` with no route (GEMM / N:M MAC).
    MacSToReg {
        /// Data-memory word of the stationary operand.
        a: u16,
        /// Accumulator register.
        r: u8,
        /// Broadcast scalar, pre-splatted.
        imm: Vector,
    },
    /// `MacV Spad(a), DataMem(b) → Reg(r)` with no route (SDDMM's MAC).
    MacVToReg {
        /// Scratchpad slot of the buffered streamed operand.
        a: u16,
        /// Data-memory word of the stationary operand.
        b: u16,
        /// Accumulator register.
        r: u8,
    },
    /// Any other shape: execute from the full instruction record.
    Generic,
}

/// The shape class of a [`Plan`] — its discriminant alone, without the
/// per-issue operand addresses. The fabric's column-vectorized batch
/// detector tracks this per row: when `3·cols` consecutive-cycle issues
/// share one non-generic kind, every pipeline slot of the row provably
/// holds a MAC of that shape and the whole row's COMMIT+LOAD executes as
/// one pass over the SoA slabs (see `PeArray::batch_row`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanKind {
    /// Not batchable: generic shape (ports, routes, rare opcodes).
    #[default]
    Generic,
    /// [`Plan::MacSToSpad`].
    MacSToSpad,
    /// [`Plan::MacSToReg`].
    MacSToReg,
    /// [`Plan::MacVToReg`].
    MacVToReg,
}

impl Plan {
    /// The plan's shape class (batch-uniformity tracking).
    pub fn kind(&self) -> PlanKind {
        match self {
            Plan::MacSToSpad { .. } => PlanKind::MacSToSpad,
            Plan::MacSToReg { .. } => PlanKind::MacSToReg,
            Plan::MacVToReg { .. } => PlanKind::MacVToReg,
            Plan::Generic => PlanKind::Generic,
        }
    }

    /// Decodes one instruction into its execution plan.
    pub fn classify(i: &Instruction) -> Plan {
        if i.route.is_some() {
            return Plan::Generic;
        }
        match (i.op, i.op1, i.op2, i.res) {
            (Opcode::MacS, Addr::Imm, Addr::DataMem(a), Addr::Spad(b)) => Plan::MacSToSpad {
                a,
                b,
                imm: i.imm.unwrap_or(Vector::ZERO),
            },
            (Opcode::MacS, Addr::Imm, Addr::DataMem(a), Addr::Reg(r))
                if (r as usize) < NUM_REGS =>
            {
                Plan::MacSToReg {
                    a,
                    r,
                    imm: i.imm.unwrap_or(Vector::ZERO),
                }
            }
            (Opcode::MacV, Addr::Spad(a), Addr::DataMem(b), Addr::Reg(r))
                if (r as usize) < NUM_REGS =>
            {
                Plan::MacVToReg { a, b, r }
            }
            _ => Plan::Generic,
        }
    }
}

use crate::pe::NUM_REGS;

/// A power-of-two ring of issued instruction records (see [`InstrHandle`]).
///
/// Capacity must exceed the maximum number of simultaneously live issues.
/// For the dynamic fabric that bound is `rows × (3·cols + 2)`: each row
/// interns at most one record per cycle and a record's last reader is the
/// COMMIT of the last column, `3·cols − 1` cycles after issue, so the ring
/// wraps strictly slower than records retire.
#[derive(Debug)]
pub struct InstrRing {
    buf: Box<[Instruction]>,
    plans: Box<[Plan]>,
    mask: u32,
    next: u32,
    #[cfg(debug_assertions)]
    tags: Box<[u32]>,
}

impl InstrRing {
    /// A ring able to keep at least `min_live` records live at once.
    ///
    /// # Panics
    ///
    /// Panics if `min_live` rounds above `u32::MAX / 2` slots.
    pub fn with_capacity(min_live: usize) -> InstrRing {
        let size = min_live.next_power_of_two().max(1);
        assert!(
            size <= (u32::MAX / 2) as usize,
            "instruction ring too large"
        );
        InstrRing {
            buf: vec![Instruction::NOP; size].into_boxed_slice(),
            plans: vec![Plan::Generic; size].into_boxed_slice(),
            mask: (size - 1) as u32,
            next: 0,
            // Tags start poisoned (`u32::MAX` can never equal a handle until
            // 2³² interns) so resolving a never-interned slot panics too.
            #[cfg(debug_assertions)]
            tags: vec![u32::MAX; size].into_boxed_slice(),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Returns the ring to its post-construction state, keeping the slot
    /// allocation. Under `debug_assertions` the generation tags are
    /// re-poisoned, so any [`InstrHandle`] issued before the reset panics on
    /// resolve instead of silently aliasing a new run's records (the fabric
    /// reuse audit depends on this).
    pub fn reset(&mut self) {
        self.buf.fill(Instruction::NOP);
        self.plans.fill(Plan::Generic);
        self.next = 0;
        #[cfg(debug_assertions)]
        self.tags.fill(u32::MAX);
    }

    /// Interns one issued instruction, returning its handle. The slot being
    /// reused must no longer be referenced (guaranteed by sizing the ring to
    /// the issue-to-retire window; checked by [`InstrRing::get`] in debug).
    #[inline]
    pub fn intern(&mut self, instr: Instruction) -> InstrHandle {
        // Decode once per issue: every column's LOAD/COMMIT of this issue
        // dispatches on the plan instead of re-inspecting the record.
        let plan = Plan::classify(&instr);
        self.intern_planned(instr, plan)
    }

    /// [`InstrRing::intern`] with a pre-computed plan (callers that already
    /// classified the instruction, e.g. the fabric's issue path).
    #[inline]
    pub fn intern_planned(&mut self, instr: Instruction, plan: Plan) -> InstrHandle {
        debug_assert_eq!(
            plan,
            Plan::classify(&instr),
            "plan does not match instruction"
        );
        let h = self.next;
        let slot = (h & self.mask) as usize;
        self.buf[slot] = instr;
        self.plans[slot] = plan;
        #[cfg(debug_assertions)]
        {
            self.tags[slot] = h;
        }
        self.next = self.next.wrapping_add(1);
        InstrHandle(h)
    }

    /// The generation-tag staleness check (compiled out in release — both
    /// resolvers share this one definition).
    #[cfg(debug_assertions)]
    #[inline(always)]
    fn check_tag(&self, h: InstrHandle) {
        assert_eq!(
            self.tags[(h.0 & self.mask) as usize],
            h.0,
            "stale InstrHandle: ring slot {} was reused after this handle was issued",
            h.0 & self.mask
        );
    }

    /// Resolves a handle to its interned record.
    ///
    /// # Panics
    ///
    /// Panics under `debug_assertions` when the handle's slot has been
    /// reused by a later [`InstrRing::intern`] (a stale handle). Release
    /// builds perform no check — the access is a masked index.
    #[inline(always)]
    pub fn get(&self, h: InstrHandle) -> &Instruction {
        #[cfg(debug_assertions)]
        self.check_tag(h);
        &self.buf[(h.0 & self.mask) as usize]
    }

    /// Resolves a handle to its issue-time execution plan (same staleness
    /// rules as [`InstrRing::get`]).
    #[inline(always)]
    pub fn plan(&self, h: InstrHandle) -> Plan {
        #[cfg(debug_assertions)]
        self.check_tag(h);
        self.plans[(h.0 & self.mask) as usize]
    }
}

impl std::fmt::Display for Instruction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?} {} {} {}", self.op, self.op1, self.op2, self.res)?;
        if let Some(r) = self.route {
            write!(f, " route({}→{})", r.from, r.to)?;
        }
        if self.imm.is_some() {
            write!(f, " imm")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_arithmetic() {
        let a = Vector([1, 2, 3, 4]);
        let b = Vector([10, 20, 30, 40]);
        assert_eq!(a.add(b), Vector([11, 22, 33, 44]));
        assert_eq!(a.mul(b), Vector([10, 40, 90, 160]));
        assert_eq!(Vector::ZERO.mac(a, b), a.mul(b));
        assert_eq!(a.reduce_sum(), 10);
        assert_eq!(Vector::splat(5).0, [5; LANES]);
        assert!(Vector::ZERO.is_zero());
        assert!(!a.is_zero());
    }

    #[test]
    fn vector_from_slice_pads() {
        let v = Vector::from_slice(&[7, 8]);
        assert_eq!(v, Vector([7, 8, 0, 0]));
    }

    #[test]
    #[should_panic(expected = "longer than")]
    fn vector_from_slice_rejects_long() {
        let _ = Vector::from_slice(&[0; 5]);
    }

    #[test]
    fn direction_opposites() {
        for d in Direction::all() {
            assert_eq!(d.opposite().opposite(), d);
        }
        assert_eq!(Direction::North.opposite(), Direction::South);
    }

    #[test]
    fn opcode_classes() {
        assert!(Opcode::MacS.is_mac());
        assert!(Opcode::MacS.is_compute());
        assert!(!Opcode::Mov.is_compute());
        assert!(!Opcode::Nop.is_compute());
        assert!(Opcode::Acc.is_compute());
        assert!(!Opcode::Acc.is_mac());
    }

    #[test]
    fn noc_conflict_same_direction_read_write() {
        // Read and write South in one instruction: illegal (§3.1).
        let i = Instruction::new(
            Opcode::Mov,
            Addr::Port(Direction::South),
            Addr::Null,
            Addr::Port(Direction::South),
        );
        assert_eq!(i.noc_conflict(), Some(Direction::South));
    }

    #[test]
    fn noc_conflict_route_vs_res() {
        // res pushes South while route also pushes South: double drive.
        let i = Instruction::new(
            Opcode::Mov,
            Addr::Spad(0),
            Addr::Null,
            Addr::Port(Direction::South),
        )
        .with_route(Direction::North, Direction::South);
        assert_eq!(i.noc_conflict(), Some(Direction::South));
    }

    #[test]
    fn noc_bypass_is_legal() {
        // North→South pass-through riding a MAC that reads dmem: legal.
        let i = Instruction::new(Opcode::MacS, Addr::Imm, Addr::DataMem(3), Addr::Spad(1))
            .with_route(Direction::North, Direction::South);
        assert_eq!(i.noc_conflict(), None);
    }

    #[test]
    fn instruction_display_mentions_route() {
        let i = Instruction::new(
            Opcode::Add,
            Addr::Reg(0),
            Addr::Port(Direction::West),
            Addr::Port(Direction::East),
        );
        assert!(i.to_string().contains("Add"));
        let i = i.with_route(Direction::North, Direction::South);
        assert!(i.to_string().contains("route"));
    }

    #[test]
    fn port_traffic_predicates() {
        let i = Instruction::new(
            Opcode::Mov,
            Addr::Port(Direction::North),
            Addr::Null,
            Addr::Port(Direction::South),
        );
        assert!(i.pops_from(Direction::North));
        assert!(!i.pops_from(Direction::West));
        assert!(i.pushes_toward(Direction::South));
        assert!(!i.pushes_toward(Direction::East));
        let routed = Instruction::NOP.with_route(Direction::West, Direction::East);
        assert!(routed.pops_from(Direction::West));
        assert!(routed.pushes_toward(Direction::East));
        assert!(!Instruction::NOP.pops_from(Direction::North));
    }

    #[test]
    fn nop_constant() {
        assert_eq!(Instruction::NOP.op, Opcode::Nop);
        assert_eq!(Instruction::NOP.noc_conflict(), None);
        assert_eq!(Instruction::default().op, Opcode::Nop);
    }

    #[test]
    fn instr_ring_roundtrips_within_capacity() {
        let mut ring = InstrRing::with_capacity(3);
        assert_eq!(ring.capacity(), 4);
        let a = Instruction::new(Opcode::Mov, Addr::Imm, Addr::Null, Addr::Reg(0))
            .with_imm(Vector::splat(1));
        let b = Instruction::new(Opcode::Add, Addr::Reg(0), Addr::Reg(1), Addr::Reg(2));
        let ha = ring.intern(a);
        let hb = ring.intern(b);
        assert_eq!(*ring.get(ha), a);
        assert_eq!(*ring.get(hb), b);
        // Handles may be read many times while live (every column's LOAD and
        // COMMIT of a row resolves the same issue).
        assert_eq!(*ring.get(ha), a);
    }

    #[test]
    fn instr_ring_slots_are_reused_in_issue_order() {
        let mut ring = InstrRing::with_capacity(2);
        let mk = |t: u32| Instruction::NOP.with_tag(t);
        let h0 = ring.intern(mk(0));
        let _h1 = ring.intern(mk(1));
        assert_eq!(ring.get(h0).tag, 0);
        let h2 = ring.intern(mk(2)); // reuses h0's slot
        assert_eq!(ring.get(h2).tag, 2);
    }

    /// The generation-tag check: resolving a handle whose slot was reused
    /// must panic in debug builds (and is compiled out in release — the CI
    /// debug-assertions job runs this test with `-C debug-assertions=on`).
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "stale InstrHandle")]
    fn instr_ring_stale_handle_panics_in_debug() {
        let mut ring = InstrRing::with_capacity(2);
        let h0 = ring.intern(Instruction::NOP.with_tag(7));
        ring.intern(Instruction::NOP.with_tag(8));
        ring.intern(Instruction::NOP.with_tag(9)); // wraps onto h0's slot
        let _ = ring.get(h0);
    }

    /// A never-interned slot is also a stale read in debug builds.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "stale InstrHandle")]
    fn instr_ring_default_handle_is_poisoned_in_debug() {
        let ring = InstrRing::with_capacity(4);
        let _ = ring.get(InstrHandle::default());
    }
}
