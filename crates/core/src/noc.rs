//! The dynamically-managed circuit-switched NoC (§2.1–§2.2).
//!
//! Canon's inter-PE links are circuit-switched and carry no runtime flow
//! control *inside* the array: thanks to the deterministic staggered timing,
//! the orchestrators manage congestion externally via credits and embed the
//! switching decisions in the instruction stream. The simulator models each
//! link as a small tagged FIFO; the orchestrator-level credit protocol (see
//! [`crate::fabric`]) guarantees the FIFOs never overflow, and the simulator
//! *checks* that guarantee instead of silently providing elastic buffering.
//!
//! ## Hot-path discipline
//!
//! [`Link::push`] and [`Link::pop`] sit on the simulator's innermost loop
//! (every NoC transfer of every cycle), so they are allocation-free on
//! success: error context arrives as a copyable [`ErrCtx`] descriptor that
//! is rendered to a string only when a protocol error actually fires, and
//! the FIFO itself is a fixed-capacity ring buffer ([`Ring`]) — bounded
//! links never reallocate (the credit protocol proves their occupancy
//! bound), while sink/elastic links grow to their high-water mark once and
//! then stay allocation-free.

use crate::isa::{Direction, Vector, LANES};
use crate::SimError;

/// A NoC payload: one [`Vector`] plus the output-row tag attached by the
/// producing instruction (used by the edge collectors, preserved by
/// pass-through routes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaggedVector {
    /// Payload.
    pub value: Vector,
    /// Producer-attached tag (output row id / linear output index).
    pub tag: u32,
}

impl TaggedVector {
    /// The zero payload with tag 0 (what array-edge reads return).
    pub const ZERO: TaggedVector = TaggedVector {
        value: Vector([0; LANES]),
        tag: 0,
    };
}

/// Lazily-rendered context of a NoC protocol error.
///
/// The success path of [`Link::push`]/[`Link::pop`] only copies this enum;
/// the describing string is built (via [`std::fmt::Display`]) exclusively on
/// the error path — eager `format!` arguments here used to dominate the
/// simulator's steady-state allocation traffic.
#[derive(Debug, Clone, Copy)]
pub enum ErrCtx {
    /// A static label (edge feeders, collectors, tests).
    Label(&'static str),
    /// A pop of PE `(r, c)`'s port facing `dir`.
    Pop {
        /// Port direction.
        dir: Direction,
        /// PE coordinates `(row, col)`.
        pe: (usize, usize),
    },
    /// A push out of PE `(r, c)` towards `dir`.
    Push {
        /// Port direction.
        dir: Direction,
        /// PE coordinates `(row, col)`.
        pe: (usize, usize),
    },
}

impl From<&'static str> for ErrCtx {
    fn from(label: &'static str) -> ErrCtx {
        ErrCtx::Label(label)
    }
}

impl std::fmt::Display for ErrCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ErrCtx::Label(s) => f.write_str(s),
            ErrCtx::Pop { dir, pe } => write!(f, "{dir} pop at PE ({}, {})", pe.0, pe.1),
            ErrCtx::Push { dir, pe } => write!(f, "{dir} push at PE ({}, {})", pe.0, pe.1),
        }
    }
}

/// A fixed-capacity ring buffer of [`TaggedVector`]s. Bounded links size it
/// once at construction; unbounded flavours (sinks, elastic links) grow it
/// by doubling, reaching their high-water mark and then never allocating
/// again.
///
/// The backing storage is always a power of two so that the wrap-around is
/// a mask instead of a hardware division — push/pop run once per NoC
/// transfer of every simulated cycle.
#[derive(Debug, Clone)]
struct Ring {
    buf: Box<[TaggedVector]>,
    head: usize,
    len: usize,
    /// Peak occupancy since the last [`Ring::reset`] (drives the shrink —
    /// doubling growth can overshoot the actual peak by up to 2x).
    high_water: usize,
}

impl Ring {
    fn with_capacity(cap: usize) -> Ring {
        let size = cap.next_power_of_two().max(1);
        Ring {
            buf: vec![TaggedVector::ZERO; size].into_boxed_slice(),
            head: 0,
            len: 0,
            high_water: 0,
        }
    }

    /// Drops queued entries and shrinks the backing storage to the
    /// high-water mark's power of two, then rearms the mark.
    fn reset(&mut self) {
        self.head = 0;
        self.len = 0;
        let tight = self.high_water.next_power_of_two().max(1);
        if tight < self.buf.len() {
            self.buf = vec![TaggedVector::ZERO; tight].into_boxed_slice();
        }
        self.high_water = 0;
    }

    #[inline]
    fn mask(&self) -> usize {
        self.buf.len() - 1
    }

    fn is_full(&self) -> bool {
        self.len == self.buf.len()
    }

    /// Doubles the backing storage, re-linearizing the queue.
    fn grow(&mut self) {
        let new_cap = (self.buf.len() * 2).max(8);
        let mut new_buf = vec![TaggedVector::ZERO; new_cap].into_boxed_slice();
        let mask = self.mask();
        for (i, slot) in new_buf.iter_mut().take(self.len).enumerate() {
            *slot = self.buf[(self.head + i) & mask];
        }
        self.buf = new_buf;
        self.head = 0;
    }

    #[inline]
    fn push_back(&mut self, entry: TaggedVector) {
        debug_assert!(!self.is_full(), "ring push past capacity");
        let idx = (self.head + self.len) & self.mask();
        self.buf[idx] = entry;
        self.len += 1;
        if self.len > self.high_water {
            self.high_water = self.len;
        }
    }

    #[inline]
    fn pop_front(&mut self) -> Option<TaggedVector> {
        if self.len == 0 {
            return None;
        }
        let entry = self.buf[self.head];
        self.head = (self.head + 1) & self.mask();
        self.len -= 1;
        Some(entry)
    }
}

/// One directed inter-PE link: a bounded FIFO of [`TaggedVector`]s.
///
/// Three flavours exist:
/// * internal links (bounded; overflow and underflow are protocol errors),
/// * zero-source edges (reads at the array boundary return zero — e.g. the
///   west input of column 0 in the SDDMM psum chain),
/// * sinks (south/east array edges; drained by the fabric's collectors every
///   cycle).
#[derive(Debug, Clone)]
pub struct Link {
    ring: Ring,
    capacity: usize,
    zero_source: bool,
    relaxed: bool,
    pushes: u64,
}

impl Link {
    /// Creates an internal bounded link. Its ring buffer is allocated once
    /// here; the credit protocol guarantees occupancy never exceeds
    /// `capacity`, so the link never allocates again.
    pub fn bounded(capacity: usize) -> Link {
        Link {
            ring: Ring::with_capacity(capacity),
            capacity,
            zero_source: false,
            relaxed: false,
            pushes: 0,
        }
    }

    /// Creates a zero-source edge link: pops always yield zero.
    pub fn zero_source() -> Link {
        Link {
            ring: Ring::with_capacity(0),
            capacity: 0,
            zero_source: true,
            relaxed: false,
            pushes: 0,
        }
    }

    /// Creates a sink link (drained externally; effectively unbounded, grown
    /// to its high-water mark so collector latency never back-pressures).
    pub fn sink() -> Link {
        Link {
            ring: Ring::with_capacity(0),
            capacity: usize::MAX,
            zero_source: false,
            relaxed: false,
            pushes: 0,
        }
    }

    /// Creates an elastic link for the static spatial execution mode
    /// (Appendix D): pops of an empty queue return zero instead of erroring
    /// (the compiler schedules warm-up cycles), and capacity is unbounded.
    pub fn elastic() -> Link {
        Link {
            ring: Ring::with_capacity(0),
            capacity: usize::MAX,
            zero_source: false,
            relaxed: true,
            pushes: 0,
        }
    }

    /// Pops the oldest entry, yielding zero when empty (spatial-mode
    /// semantics).
    pub fn pop_or_zero(&mut self) -> TaggedVector {
        if self.zero_source {
            return TaggedVector::ZERO;
        }
        self.ring.pop_front().unwrap_or(TaggedVector::ZERO)
    }

    /// Pushes an entry.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RouterConflict`]-style protocol errors when the
    /// credit discipline failed: pushing to a zero-source or over capacity.
    #[inline]
    pub fn push(
        &mut self,
        entry: TaggedVector,
        cycle: u64,
        ctx: impl Into<ErrCtx>,
    ) -> Result<(), SimError> {
        if self.zero_source {
            return Err(Self::push_zero_source(cycle, ctx.into()));
        }
        if self.ring.len >= self.capacity {
            return Err(Self::push_overflow(cycle, ctx.into()));
        }
        if self.ring.is_full() {
            // Only unbounded flavours reach here (bounded rings are sized to
            // `capacity`, which the check above enforces).
            self.ring.grow();
        }
        self.ring.push_back(entry);
        self.pushes += 1;
        Ok(())
    }

    #[cold]
    fn push_zero_source(cycle: u64, ctx: ErrCtx) -> SimError {
        SimError::AddressOutOfRange {
            context: format!("push to zero-source edge link at cycle {cycle} ({ctx})"),
        }
    }

    #[cold]
    fn push_overflow(cycle: u64, ctx: ErrCtx) -> SimError {
        SimError::Deadlock {
            cycle,
            waiting_on: format!("link overflow ({ctx}): credit protocol violated"),
        }
    }

    /// Pops the oldest entry.
    ///
    /// # Errors
    ///
    /// Popping an empty internal link is a protocol error (the FSM issued a
    /// consuming instruction before the producer delivered).
    #[inline]
    pub fn pop(&mut self, cycle: u64, ctx: impl Into<ErrCtx>) -> Result<TaggedVector, SimError> {
        if self.zero_source {
            return Ok(TaggedVector::ZERO);
        }
        match self.ring.pop_front() {
            Some(e) => Ok(e),
            None if self.relaxed => Ok(TaggedVector::ZERO),
            None => Err(Self::pop_underflow(cycle, ctx.into())),
        }
    }

    #[cold]
    fn pop_underflow(cycle: u64, ctx: ErrCtx) -> SimError {
        SimError::Deadlock {
            cycle,
            waiting_on: format!("pop of empty link ({ctx}): producer/consumer desynchronised"),
        }
    }

    /// Pops the oldest entry without protocol checks (`None` when empty or a
    /// zero source) — the edge collectors' drain primitive.
    #[inline]
    pub fn try_pop(&mut self) -> Option<TaggedVector> {
        if self.zero_source {
            return None;
        }
        self.ring.pop_front()
    }

    /// Current occupancy (always 0 for zero sources).
    #[inline]
    pub fn len(&self) -> usize {
        self.ring.len
    }

    /// True when no entries are queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ring.len == 0
    }

    /// Total pushes observed (a NoC-hop counter).
    pub fn push_count(&self) -> u64 {
        self.pushes
    }

    /// Drains queued entries in FIFO order (used by the fabric's edge
    /// collectors and the spatial runner). Equivalent to looping
    /// [`Link::try_pop`] — no intermediate collection is built, and
    /// entries the caller does not consume (iterator dropped early) simply
    /// remain queued.
    pub fn drain_all(&mut self) -> impl Iterator<Item = TaggedVector> + '_ {
        std::iter::from_fn(move || self.try_pop())
    }

    /// Drops any queued entries and returns an unbounded link's backing
    /// storage to its high-water footprint: the doubling growth of sinks
    /// and elastic links can overshoot the actual peak occupancy by up to
    /// 2x, and previously the peak buffer was kept for the link's whole
    /// lifetime. The fabric resets its edge sinks when a run drains,
    /// lowering resident memory while a finished cell's collectors are
    /// post-processed alongside other workers' live fabrics on large
    /// `--jobs N` sweeps. Bounded links are left untouched — their buffer
    /// *is* the credit-protocol bound, allocated once.
    pub fn reset(&mut self) {
        if self.capacity == usize::MAX {
            self.ring.reset();
        }
    }

    /// Returns the link to its post-construction state for fabric reuse:
    /// queued entries dropped and the push counter zeroed, on **every**
    /// link flavour (unlike [`Link::reset`], which only shrinks unbounded
    /// rings between runs of the same fabric). Bounded links keep their
    /// credit-protocol-sized buffer; unbounded links keep their high-water
    /// footprint — both architecturally invisible.
    pub fn clear(&mut self) {
        self.ring.head = 0;
        self.ring.len = 0;
        self.ring.high_water = 0;
        self.pushes = 0;
    }
}

/// The full link fabric for a `rows`×`cols` array.
///
/// Indexing convention:
/// * `vertical(r, c)` for `r in 0..=rows` is the southbound link whose
///   consumer is PE `(r, c)`'s North port; `r == 0` is the north array edge
///   (feeder or zero source) and `r == rows` is the south edge sink.
/// * `horizontal(r, c)` for `c in 0..=cols` is the eastbound link whose
///   consumer is PE `(r, c)`'s West port; `c == 0` is the west edge (zero
///   source — west-edge operands travel as instruction immediates) and
///   `c == cols` is the east edge sink.
///
/// Only south/east-bound links are instantiated because every mapping in the
/// paper moves data south (psum reduction, A streaming) or east (SDDMM psum
/// chain); north/west movement would be a straightforward extension.
#[derive(Debug)]
pub struct LinkGrid {
    rows: usize,
    cols: usize,
    vertical: Vec<Link>,
    horizontal: Vec<Link>,
}

impl LinkGrid {
    /// Builds a grid for spatial mode (Appendix D): every internal link is
    /// elastic (pop-empty yields zero during warm-up), the north edge feeds,
    /// and the south/east edges sink.
    pub fn new_elastic(rows: usize, cols: usize) -> LinkGrid {
        let mut g = LinkGrid::new(rows, cols, 2, true);
        for r in 0..=rows {
            for c in 0..cols {
                let link = g.vertical(r, c);
                *link = if r == rows {
                    Link::sink()
                } else {
                    Link::elastic()
                };
            }
        }
        for r in 0..rows {
            for c in 0..=cols {
                let link = g.horizontal(r, c);
                *link = if c == cols {
                    Link::sink()
                } else if c == 0 {
                    Link::zero_source()
                } else {
                    Link::elastic()
                };
            }
        }
        g
    }

    /// Builds the grid. `north_edge_feeder` selects whether the north edge
    /// links are real FIFOs (fed by the fabric's stream movers, as in SDDMM)
    /// or zero sources (as in SpMM, where nothing enters from the north).
    pub fn new(rows: usize, cols: usize, capacity: usize, north_edge_feeder: bool) -> LinkGrid {
        let mut vertical = Vec::with_capacity((rows + 1) * cols);
        for r in 0..=rows {
            for _c in 0..cols {
                vertical.push(if r == 0 {
                    if north_edge_feeder {
                        Link::bounded(capacity)
                    } else {
                        Link::zero_source()
                    }
                } else if r == rows {
                    Link::sink()
                } else {
                    Link::bounded(capacity)
                });
            }
        }
        let mut horizontal = Vec::with_capacity(rows * (cols + 1));
        for _r in 0..rows {
            for c in 0..=cols {
                horizontal.push(if c == 0 {
                    Link::zero_source()
                } else if c == cols {
                    Link::sink()
                } else {
                    Link::bounded(capacity)
                });
            }
        }
        LinkGrid {
            rows,
            cols,
            vertical,
            horizontal,
        }
    }

    /// Southbound link consumed by PE `(r, c)`'s North port.
    pub fn vertical(&mut self, r: usize, c: usize) -> &mut Link {
        debug_assert!(r <= self.rows && c < self.cols);
        &mut self.vertical[r * self.cols + c]
    }

    /// Immutable access to a vertical link.
    pub fn vertical_ref(&self, r: usize, c: usize) -> &Link {
        &self.vertical[r * self.cols + c]
    }

    /// Eastbound link consumed by PE `(r, c)`'s West port.
    pub fn horizontal(&mut self, r: usize, c: usize) -> &mut Link {
        debug_assert!(r < self.rows && c <= self.cols);
        &mut self.horizontal[r * (self.cols + 1) + c]
    }

    /// Immutable access to a horizontal link.
    pub fn horizontal_ref(&self, r: usize, c: usize) -> &Link {
        &self.horizontal[r * (self.cols + 1) + c]
    }

    /// Number of links in the grid (vertical then horizontal — the
    /// enumeration order of [`LinkGrid::for_each_push_count`]).
    pub fn link_count(&self) -> usize {
        self.vertical.len() + self.horizontal.len()
    }

    /// Visits every link's cumulative push count in a fixed order: all
    /// vertical links row-major (`r` in `0..=rows`, `c` in `0..cols`), then
    /// all horizontal links row-major (`r` in `0..rows`, `c` in `0..=cols`).
    /// `f(vertical, r, c, pushes)` — the trace layer diffs consecutive scans
    /// to attribute NoC hops to links per cycle.
    pub fn for_each_push_count(&self, mut f: impl FnMut(bool, usize, usize, u64)) {
        for r in 0..=self.rows {
            for c in 0..self.cols {
                f(true, r, c, self.vertical[r * self.cols + c].push_count());
            }
        }
        for r in 0..self.rows {
            for c in 0..=self.cols {
                f(
                    false,
                    r,
                    c,
                    self.horizontal[r * (self.cols + 1) + c].push_count(),
                );
            }
        }
    }

    /// Total pushes across all links (NoC hop count).
    pub fn total_pushes(&self) -> u64 {
        self.vertical.iter().map(Link::push_count).sum::<u64>()
            + self.horizontal.iter().map(Link::push_count).sum::<u64>()
    }

    /// True when every internal (non-edge) link is empty.
    pub fn internal_quiescent(&self) -> bool {
        for r in 1..self.rows {
            for c in 0..self.cols {
                if !self.vertical_ref(r, c).is_empty() {
                    return false;
                }
            }
        }
        for r in 0..self.rows {
            for c in 1..self.cols {
                if !self.horizontal_ref(r, c).is_empty() {
                    return false;
                }
            }
        }
        true
    }

    /// True when north-edge feeder links still hold tokens.
    pub fn north_edge_pending(&self) -> bool {
        (0..self.cols).any(|c| !self.vertical_ref(0, c).is_empty())
    }

    /// True when both input links of PE `(r, c)` — the southbound link into
    /// its North port and the eastbound link into its West port — are empty.
    /// The fabric's active-set scheduler uses this as the "no pending NoC
    /// work" half of its deactivation condition.
    pub fn pe_inputs_empty(&self, r: usize, c: usize) -> bool {
        self.vertical_ref(r, c).is_empty() && self.horizontal_ref(r, c).is_empty()
    }

    /// [`Link::reset`] applied to every unbounded link (edge sinks, elastic
    /// links): gives back growth overshoot once a run has drained.
    pub fn reset_links(&mut self) {
        for l in &mut self.vertical {
            l.reset();
        }
        for l in &mut self.horizontal {
            l.reset();
        }
    }

    /// [`Link::clear`] applied to every link: drops any queued entries and
    /// zeroes all push counters, returning the grid to its
    /// post-construction state (fabric reuse across warm-pool requests).
    pub fn clear_links(&mut self) {
        for l in &mut self.vertical {
            l.clear();
        }
        for l in &mut self.horizontal {
            l.clear();
        }
    }

    /// Total entries currently queued across all links (the reuse audit's
    /// "NoC is empty" check).
    pub fn total_queued(&self) -> usize {
        self.vertical
            .iter()
            .chain(self.horizontal.iter())
            .map(Link::len)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Vector;

    fn tv(tag: u32, v: i32) -> TaggedVector {
        TaggedVector {
            value: Vector::splat(v),
            tag,
        }
    }

    #[test]
    fn fifo_order_and_counts() {
        let mut l = Link::bounded(2);
        l.push(tv(1, 10), 0, "t").unwrap();
        l.push(tv(2, 20), 0, "t").unwrap();
        assert_eq!(l.len(), 2);
        assert_eq!(l.pop(1, "t").unwrap().tag, 1);
        assert_eq!(l.pop(1, "t").unwrap().tag, 2);
        assert_eq!(l.push_count(), 2);
    }

    #[test]
    fn ring_wraps_and_preserves_order() {
        // Fill/drain repeatedly so head wraps around the fixed buffer.
        let mut l = Link::bounded(3);
        for round in 0..10u32 {
            l.push(tv(round, 1), 0, "t").unwrap();
            l.push(tv(round + 100, 2), 0, "t").unwrap();
            assert_eq!(l.pop(0, "t").unwrap().tag, round);
            assert_eq!(l.pop(0, "t").unwrap().tag, round + 100);
        }
        assert!(l.is_empty());
    }

    #[test]
    fn overflow_and_underflow_are_errors() {
        let mut l = Link::bounded(1);
        l.push(tv(0, 0), 0, "t").unwrap();
        assert!(l.push(tv(0, 0), 0, "t").is_err());
        let mut l2 = Link::bounded(1);
        assert!(l2.pop(5, "t").is_err());
    }

    #[test]
    fn err_ctx_renders_lazily_with_pe_coordinates() {
        let mut l = Link::bounded(1);
        let err = l
            .pop(
                7,
                ErrCtx::Pop {
                    dir: Direction::North,
                    pe: (2, 3),
                },
            )
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("North pop at PE (2, 3)"), "{msg}");
        l.push(tv(0, 0), 0, "t").unwrap();
        let err = l
            .push(
                tv(0, 0),
                8,
                ErrCtx::Push {
                    dir: Direction::South,
                    pe: (4, 5),
                },
            )
            .unwrap_err();
        assert!(err.to_string().contains("South push at PE (4, 5)"));
    }

    #[test]
    fn zero_source_semantics() {
        let mut l = Link::zero_source();
        assert_eq!(l.pop(0, "t").unwrap(), TaggedVector::ZERO);
        assert_eq!(l.pop(9, "t").unwrap(), TaggedVector::ZERO);
        assert!(l.push(tv(0, 1), 0, "t").is_err());
        assert!(l.is_empty());
        assert_eq!(l.try_pop(), None);
    }

    #[test]
    fn reset_shrinks_sinks_to_high_water_but_not_bounded_links() {
        let mut sink = Link::sink();
        // Peak occupancy 9 → buffer grew to 16; high-water pow2 is also 16,
        // so grow-to-exact keeps it. Peak 5 → buffer 8 after growth from a
        // drained state; push/drain to overshoot: grow to 16 with peak 9,
        // drain, then reset with a *new* interval peak of 2.
        for i in 0..9 {
            sink.push(tv(i, 0), 0, "t").unwrap();
        }
        while sink.try_pop().is_some() {}
        sink.reset(); // shrinks 16 → 16 (peak 9) and rearms the mark
        for i in 0..2 {
            sink.push(tv(i, 0), 0, "t").unwrap();
        }
        while sink.try_pop().is_some() {}
        sink.reset(); // peak since last reset is 2 → shrink to 2
                      // Still fully functional after shrinking.
        for i in 0..20 {
            sink.push(tv(i, 0), 0, "t").unwrap();
        }
        assert_eq!(sink.len(), 20);
        assert_eq!(sink.drain_all().count(), 20);
        // Bounded links keep their protocol-sized buffer and contents are
        // untouched by the grid-wide reset only insofar as they are
        // bounded; Link::reset on a bounded link is a no-op.
        let mut b = Link::bounded(4);
        b.push(tv(1, 1), 0, "t").unwrap();
        b.reset();
        assert_eq!(b.len(), 1, "bounded links are not reset");
        assert_eq!(b.pop(0, "t").unwrap().tag, 1);
    }

    #[test]
    fn sink_accepts_many_and_drains_in_place() {
        let mut l = Link::sink();
        for i in 0..100 {
            l.push(tv(i, i as i32), 0, "t").unwrap();
        }
        // Drain in place (no intermediate collection): entries arrive in
        // FIFO order directly off the ring.
        let mut seen = 0u32;
        while let Some(e) = l.try_pop() {
            assert_eq!(e.tag, seen);
            seen += 1;
        }
        assert_eq!(seen, 100);
        assert!(l.is_empty());
        // A drained sink keeps its high-water storage: refills do not error.
        l.push(tv(7, 7), 1, "t").unwrap();
        assert_eq!(l.drain_all().count(), 1);
    }

    #[test]
    fn grid_edges_have_expected_kinds() {
        let mut g = LinkGrid::new(2, 3, 4, false);
        // North edge without feeder: zero source.
        assert_eq!(g.vertical(0, 1).pop(0, "t").unwrap(), TaggedVector::ZERO);
        // South edge: sink.
        for _ in 0..10 {
            g.vertical(2, 0).push(tv(0, 1), 0, "t").unwrap();
        }
        // West edge: zero source.
        assert_eq!(g.horizontal(1, 0).pop(0, "t").unwrap(), TaggedVector::ZERO);
        // East edge: sink.
        g.horizontal(1, 3).push(tv(7, 7), 0, "t").unwrap();
        assert_eq!(g.total_pushes(), 11);
    }

    #[test]
    fn grid_with_feeder_north_edge_is_bounded() {
        let mut g = LinkGrid::new(2, 2, 4, true);
        g.vertical(0, 0).push(tv(1, 1), 0, "feed").unwrap();
        assert!(g.north_edge_pending());
        assert_eq!(g.vertical(0, 0).pop(0, "t").unwrap().tag, 1);
        assert!(!g.north_edge_pending());
    }

    #[test]
    fn pe_inputs_empty_tracks_both_input_links() {
        let mut g = LinkGrid::new(2, 2, 4, false);
        assert!(g.pe_inputs_empty(1, 1));
        g.vertical(1, 1).push(tv(0, 1), 0, "t").unwrap();
        assert!(!g.pe_inputs_empty(1, 1));
        g.vertical(1, 1).pop(0, "t").unwrap();
        g.horizontal(1, 1).push(tv(0, 2), 0, "t").unwrap();
        assert!(!g.pe_inputs_empty(1, 1));
        g.horizontal(1, 1).pop(0, "t").unwrap();
        assert!(g.pe_inputs_empty(1, 1));
    }

    #[test]
    fn quiescence_tracks_internal_links_only() {
        let mut g = LinkGrid::new(3, 3, 4, false);
        assert!(g.internal_quiescent());
        g.vertical(1, 1).push(tv(0, 5), 0, "t").unwrap();
        assert!(!g.internal_quiescent());
        g.vertical(1, 1).pop(0, "t").unwrap();
        assert!(g.internal_quiescent());
        // Sink contents do not affect quiescence.
        g.vertical(3, 0).push(tv(0, 5), 0, "t").unwrap();
        assert!(g.internal_quiescent());
    }
}
