//! Process-level serving tests: `repro serve` + `repro submit` + `repro
//! ctl` as real processes over a real Unix socket, including the
//! crash/kill/resume contract — a SIGKILLed daemon restarted over the same
//! store converges, after `repro store gc`, to the byte-identical store of
//! an uninterrupted daemon serving the same cells.
#![cfg(unix)]

use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

// Raw POSIX kill(2): the workspace carries no libc crate and the tests
// need SIGTERM (graceful drain) alongside SIGKILL (Child::kill).
extern "C" {
    fn kill(pid: i32, sig: i32) -> i32;
}

const SIGTERM: i32 = 15;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("canon-serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Spawns `repro serve` and blocks until the socket accepts connections.
///
/// Every test path `wait()`s the child (after SIGTERM/SIGKILL), so no
/// zombie survives the early return on a successful connect.
#[allow(clippy::zombie_processes)]
fn spawn_daemon(socket: &Path, store: &Path) -> Child {
    let mut child = repro()
        .args(["serve", "--jobs", "2"])
        .arg("--socket")
        .arg(socket)
        .arg("--out")
        .arg(store)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn repro serve");
    for _ in 0..500 {
        if UnixStream::connect(socket).is_ok() {
            return child;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let _ = child.kill();
    let _ = child.wait();
    panic!("daemon never started listening on {}", socket.display());
}

/// Runs `repro submit` for one cell and returns (exit code, stdout).
fn submit(socket: &Path, extra: &[&str]) -> (i32, String) {
    let out = repro()
        .args(["submit", "--smoke"])
        .arg("--socket")
        .arg(socket)
        .args(extra)
        .output()
        .expect("run repro submit");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

/// The serving workload of these tests: three healthy cells across two
/// architectures, one injected panic, and one deterministic cycle-ceiling
/// timeout — every reply class the protocol quarantines.
fn serve_cells(socket: &Path) -> Vec<(i32, String)> {
    vec![
        submit(socket, &["--workload", "GEMM"]),
        submit(socket, &["--workload", "GEMM", "--arch", "Systolic"]),
        submit(socket, &["--workload", "SpMM", "--band", "S2"]),
        submit(socket, &["--workload", "GEMM", "--fault", "panic@3"]),
        submit(
            socket,
            &[
                "--workload",
                "GEMM",
                "--fault",
                "slow:2000000ns",
                "--cell-cycles",
                "50",
            ],
        ),
    ]
}

fn gc(store: &Path) {
    let status = repro()
        .args(["store", "gc", "--out"])
        .arg(store)
        .stdout(Stdio::null())
        .status()
        .expect("run repro store gc");
    assert!(status.success(), "store gc failed for {}", store.display());
}

#[test]
fn daemon_serves_faults_structured_and_kill_resume_converges() {
    let dir = scratch("kill-resume");

    // Reference: one uninterrupted daemon serves every cell, then drains
    // cleanly via SIGTERM (exit 143).
    let ref_store = dir.join("reference.jsonl");
    let ref_socket = dir.join("reference.sock");
    let mut daemon = spawn_daemon(&ref_socket, &ref_store);
    let replies = serve_cells(&ref_socket);

    // Healthy cells succeed; injected faults come back as structured
    // result replies — the daemon process survives all of them.
    assert_eq!(replies[0].0, 0, "healthy submit: {}", replies[0].1);
    assert!(replies[0].1.contains("\"status\":\"ok\""));
    assert_eq!(replies[3].0, 3, "faulted submit exits 3: {}", replies[3].1);
    assert!(
        replies[3].1.contains("\"status\":\"panic\"") && replies[3].1.contains("injected fault"),
        "panic reply: {}",
        replies[3].1
    );
    assert_eq!(replies[4].0, 3);
    assert!(
        replies[4].1.contains("\"status\":\"timeout\""),
        "timeout reply: {}",
        replies[4].1
    );

    unsafe {
        kill(daemon.id() as i32, SIGTERM);
    }
    let status = daemon.wait().unwrap();
    assert_eq!(status.code(), Some(143), "SIGTERM drain exit code");

    // Crash path: a daemon over a second store is SIGKILLed mid-service —
    // after the first two cells acknowledged — then restarted on the same
    // store.
    let crash_store = dir.join("crash.jsonl");
    let crash_socket = dir.join("crash.sock");
    let mut victim = spawn_daemon(&crash_socket, &crash_store);
    let first = submit(&crash_socket, &["--workload", "GEMM"]);
    assert_eq!(first.0, 0, "pre-kill submit: {}", first.1);
    let second = submit(&crash_socket, &["--workload", "GEMM", "--arch", "Systolic"]);
    assert_eq!(second.0, 0, "pre-kill submit: {}", second.1);
    victim.kill().unwrap(); // SIGKILL: no drain, no unlink, no goodbye
    victim.wait().unwrap();

    // Restart over the same store (and the same socket path: the stale
    // socket file must be reclaimed). Acknowledged cells are index hits.
    let mut revived = spawn_daemon(&crash_socket, &crash_store);
    let resumed = submit(&crash_socket, &["--workload", "GEMM"]);
    assert_eq!(resumed.0, 0);
    assert!(
        resumed.1.contains("\"cached\":true"),
        "acknowledged pre-kill work must be served from the store: {}",
        resumed.1
    );
    // Serve the rest of the workload, then drain cleanly.
    let replies = serve_cells(&crash_socket);
    assert!(replies[3].1.contains("\"status\":\"panic\""));
    unsafe {
        kill(revived.id() as i32, SIGTERM);
    }
    assert_eq!(revived.wait().unwrap().code(), Some(143));

    // The killed-and-resumed store converges byte-identically with the
    // uninterrupted one after the deterministic key-sorted rewrite.
    gc(&ref_store);
    gc(&crash_store);
    let reference = std::fs::read(&ref_store).unwrap();
    let crashed = std::fs::read(&crash_store).unwrap();
    assert!(!reference.is_empty());
    assert_eq!(
        reference, crashed,
        "gc'd stores must be byte-identical after kill/resume"
    );
}

#[test]
fn concurrent_sweep_against_daemon_store_fails_fast() {
    let dir = scratch("lock");
    let store = dir.join("store.jsonl");
    let socket = dir.join("serve.sock");
    let mut daemon = spawn_daemon(&socket, &store);

    // `store gc` (and `sweep`, same lock) against the daemon-owned store
    // must fail fast with the addressable message, not corrupt the journal.
    let out = repro()
        .args(["store", "gc", "--out"])
        .arg(&store)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("locked by another process"),
        "lock error must name the holder class: {stderr}"
    );

    unsafe {
        kill(daemon.id() as i32, SIGTERM);
    }
    assert_eq!(daemon.wait().unwrap().code(), Some(143));
    // Lock released with the daemon: maintenance works again.
    gc(&store);
}
