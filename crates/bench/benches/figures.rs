//! Criterion benches: one group per reproduced table/figure, exercising the
//! exact harness code paths on smoke-scale inputs. `cargo bench --workspace`
//! therefore regenerates (a reduced form of) every experiment and reports the
//! wall-clock cost of each simulator path.

use canon_bench::{ablations, figures, Scale};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("repro");
    g.sample_size(10);
    g.bench_function("tab01_config", |b| b.iter(figures::table1));
    g.bench_function("fig09_area_ablation", |b| b.iter(figures::fig09));
    g.bench_function("fig10_area_breakdown", |b| b.iter(figures::fig10));
    g.bench_function("fig11_power_breakdown", |b| {
        b.iter(|| figures::fig11(Scale::Smoke))
    });
    g.bench_function("fig12_performance", |b| {
        b.iter(|| figures::fig12(Scale::Smoke))
    });
    g.bench_function("fig13_perf_per_watt", |b| {
        b.iter(|| figures::fig13(Scale::Smoke))
    });
    g.bench_function("fig14_edp_models", |b| {
        b.iter(|| figures::fig14(Scale::Smoke))
    });
    g.bench_function("fig15_scaling_sensitivity", |b| {
        b.iter(|| figures::fig15(Scale::Smoke))
    });
    g.bench_function("fig16_bandwidth_roofline", |b| b.iter(figures::fig16));
    g.bench_function("fig17_scratchpad_depth", |b| {
        b.iter(|| figures::fig17(Scale::Smoke))
    });
    g.bench_function("ablation_async_reduction", |b| {
        b.iter(|| ablations::ablation_async(Scale::Smoke))
    });
    g.bench_function("ablation_lut_orchestrator", |b| {
        b.iter(|| ablations::ablation_lut(Scale::Smoke))
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
