//! `repro` — regenerate the paper's tables and figures, run multi-backend
//! scenario sweeps, and maintain the sweep result store.
//!
//! ```sh
//! cargo run -p canon-bench --release --bin repro -- all --jobs 8
//! cargo run -p canon-bench --release --bin repro -- fig12 fig13
//! cargo run -p canon-bench --release --bin repro -- --smoke fig17
//! cargo run -p canon-bench --release --bin repro -- sweep --jobs 4 --out results.jsonl
//! cargo run -p canon-bench --release --bin repro -- sweep --geom 8x8,16x16
//! cargo run -p canon-bench --release --bin repro -- sweep --resume --out results.jsonl
//! cargo run -p canon-bench --release --bin repro -- sweep --faults panic@4,deadlock@9,timeout@14
//! cargo run -p canon-bench --release --bin repro -- store gc --out results.jsonl
//! cargo run -p canon-bench --release --bin repro -- trace --out trace.json
//! cargo run -p canon-bench --release --bin repro -- profile
//! ```
//!
//! The `sweep` target (also the first step of `all`) expands the standard
//! architecture × workload × band × geometry grid — tensor kernels *and*
//! PolyBench loop nests, with baselines provisioned iso-MAC at every
//! `--geom` point — fans it out over `--jobs` worker threads through the
//! `canon-sweep` engine, and writes/updates the JSONL result store at
//! `--out`. Cells already present in the store under their content key are
//! reported as cache hits and not re-simulated — which is also the
//! `--resume` path: an interrupted or killed sweep left everything it
//! completed in the fsync'd journal, so re-running converges on the same
//! store. Cells that panic, deadlock, or exceed the per-cell budgets are
//! quarantined as structured failure records (exit code 3), SIGINT drains
//! in-flight cells and exits 130, and `--faults` injects deterministic
//! failures to exercise all of it. `store gc` compacts the store, dropping
//! records stranded by `CODE_SALT`/schema bumps.
//!
//! The `serve` target runs the same per-cell stack as a resident daemon
//! (`canon-serve`): a Unix-socket line-JSON protocol over warm fabric
//! pools and the result store promoted to a serving tier. `submit` is the
//! matching client (single cells or the whole standard grid), `ctl` sends
//! control commands, and SIGTERM/SIGINT drain the daemon gracefully (exit
//! 143/130). Store-touching targets (`sweep`, `store gc`, `serve`) take an
//! exclusive flock on `<store>.lock`, so a concurrent sweep against a
//! daemon-owned store fails fast instead of corrupting the journal.
//!
//! ```sh
//! cargo run -p canon-bench --release --bin repro -- serve --socket canon.sock --out results.jsonl
//! cargo run -p canon-bench --release --bin repro -- submit --socket canon.sock --smoke
//! cargo run -p canon-bench --release --bin repro -- submit --socket canon.sock \
//!     --workload SpMM --band S2 --arch Canon
//! cargo run -p canon-bench --release --bin repro -- ctl status --socket canon.sock
//! ```

use canon_bench::{ablations, bench, figures, Scale};
use canon_core::fault::{FaultAction, FaultPlan};
use canon_core::trace::{render_profile, write_chrome_trace, VecSink};
use canon_core::CanonConfig;
use canon_serve::{Client, Request, ServeOptions, SubmitRequest};
use canon_sweep::engine::{run_sweep, SweepOptions};
use canon_sweep::report::{edp_table, quarantine_report_with, speedup_table};
use canon_sweep::scenario::{standard_workloads, GridBuilder, ScenarioGrid};
use canon_sweep::store::{ResultStore, StoreLock};
use std::alloc::{GlobalAlloc, Layout, System};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicI32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// A counting wrapper around the system allocator, powering `repro bench`'s
/// steady-state allocation profile (allocations per simulated cycle). The
/// counters only tick while `COUNTING` is set (the bench target), so every
/// other `repro` run pays a single relaxed load per allocation and no
/// shared read-modify-write traffic.
struct CountingAlloc;

static COUNTING: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);
static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System`; the counters are purely
// observational.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
            ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
            ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_snapshot() -> (u64, u64) {
    (
        ALLOC_COUNT.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

/// The cooperative-shutdown flag SIGINT flips. Sweep workers poll it
/// between cells (`SweepOptions::shutdown`): in-flight cells drain, the
/// journal is flushed, and `repro` exits 130 with a partial report.
static SIGINT_FLAG: OnceLock<Arc<AtomicBool>> = OnceLock::new();

// Raw POSIX `signal(2)` binding: the workspace carries no libc crate, and
// the handler only needs to flip an atomic.
#[cfg(unix)]
extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

#[cfg(unix)]
extern "C" fn on_sigint(_signum: i32) {
    // SAFETY/async-signal-safety: `OnceLock::get` and the atomic store are
    // lock- and allocation-free; the flag is initialized before the
    // handler is installed.
    if let Some(flag) = SIGINT_FLAG.get() {
        flag.store(true, Ordering::Relaxed);
    }
    // Restore the default disposition so a second ^C kills the process
    // immediately instead of re-requesting the graceful drain.
    unsafe {
        signal(2, 0); // SIGINT, SIG_DFL
    }
}

/// Installs the graceful-SIGINT handler and returns the shutdown flag to
/// thread into [`SweepOptions`]. On non-unix hosts the flag exists but ^C
/// keeps its default (immediate-kill) behaviour.
fn install_sigint_flag() -> Arc<AtomicBool> {
    let flag = SIGINT_FLAG
        .get_or_init(|| Arc::new(AtomicBool::new(false)))
        .clone();
    #[cfg(unix)]
    // SAFETY: `on_sigint` is async-signal-safe (atomics only) and lives
    // for the whole process.
    unsafe {
        signal(2, on_sigint as *const () as usize); // SIGINT
    }
    flag
}

/// The daemon's signal slot: SIGINT/SIGTERM handlers store the raw signal
/// number here and the serve accept loop turns it into a graceful drain
/// (exit 130/143).
static SERVE_SIGNAL: OnceLock<Arc<AtomicI32>> = OnceLock::new();

#[cfg(unix)]
extern "C" fn on_serve_signal(signum: i32) {
    // SAFETY/async-signal-safety: `OnceLock::get` and the atomic store are
    // lock- and allocation-free.
    if let Some(slot) = SERVE_SIGNAL.get() {
        slot.store(signum, Ordering::Relaxed);
    }
    // A second signal kills immediately instead of re-requesting the drain.
    unsafe {
        signal(signum, 0); // SIG_DFL
    }
}

/// Installs graceful SIGINT+SIGTERM handlers for `repro serve` and returns
/// the slot to hand to [`ServeOptions::signal`].
fn install_serve_signals() -> Arc<AtomicI32> {
    let slot = SERVE_SIGNAL
        .get_or_init(|| Arc::new(AtomicI32::new(0)))
        .clone();
    #[cfg(unix)]
    // SAFETY: `on_serve_signal` is async-signal-safe and lives for the
    // whole process.
    unsafe {
        signal(2, on_serve_signal as *const () as usize); // SIGINT
        signal(15, on_serve_signal as *const () as usize); // SIGTERM
    }
    slot
}

fn usage() -> ! {
    eprintln!(
        "usage: repro [--smoke|--large] [--jobs N] [--out FILE] [--geom RxC[,RxC...]] <targets...>\n\
         targets: table1 fig9 fig10 fig11 fig12 fig13 fig14 fig15 fig16 fig17\n\
                  ablation-async ablation-buffer-sizing ablation-lut sweep all\n\
                  store gc   compact the store; reports kept/stale-salt/\n\
                        unreadable record counts and recovered torn-tail bytes\n\
                  serve   resident sweep daemon on --socket over the --out\n\
                        store: warm fabric pools, request coalescing, bounded\n\
                        queue with busy/retry-after backpressure; SIGTERM/\n\
                        SIGINT drain gracefully (exit 143/130)\n\
                  submit   client: submit the standard grid (default; --smoke\n\
                        and --faults as in sweep) or one cell (--workload,\n\
                        --band, --arch, --seed, --fault DESC); prints one\n\
                        reply line per cell plus a summary\n\
                  ctl status|drain|shutdown   control a running daemon\n\
                  bench [--baseline FILE] [--check] [--reps N]   (writes BENCH_sim.json)\n\
                  trace [--out FILE]   capture the golden SpMM scenario as a\n\
                        Perfetto-loadable Chrome trace (default: trace.json)\n\
                  profile   textual stall/occupancy profile of the same run\n\
         options:\n\
           --smoke      reduced problem sizes (CI-scale)\n\
           --large      large-fabric tier: doubled problem sizes; sweep\n\
                        defaults to the 64x64,128x64 geometries\n\
           --progress   (sweep) live progress line on stderr (cells done,\n\
                        cells/sec, operand-cache + store hit rates)\n\
           --jobs N     sweep worker threads (default: all cores)\n\
           --out FILE   sweep result store (default: sweep_results.jsonl);\n\
                        for bench, the report file (default: BENCH_sim.json)\n\
           --geom LIST  sweep fabric geometries, e.g. 8x8,16x16 (default: 8x8,\n\
                        or 64x64,128x64 under --large); baselines are\n\
                        provisioned iso-MAC at each point\n\
           --no-replay  (sweep) disable the steady-state replay engine and\n\
                        cycle-step every cell; the result store must be\n\
                        byte-identical either way (CI diffs the two)\n\
           --resume     (sweep) continue an interrupted sweep from the store\n\
                        journal: recovered records are reported instead of\n\
                        warned about; finished cells are cache hits\n\
           --faults SPEC  (sweep) deterministic fault injection, a comma list\n\
                        of KIND@CELL[:PARAM] with CELL a scenario index:\n\
                        panic@4:100 (panic at cycle 100), deadlock@9\n\
                        (withhold credits), timeout@14:NANOS (slow cell,\n\
                        default 500ms/cycle), transient@3:2 (fail 2 attempts)\n\
           --cell-timeout-ms N  (sweep) wall-clock budget per cell; overruns\n\
                        quarantine as timeout records with partial stats\n\
                        (defaults to 100 when --faults injects a timeout)\n\
           --cell-cycles N  (sweep) simulated-cycle ceiling per cell\n\
                        (deterministic timeout, independent of host speed)\n\
           --retries N  (sweep, serve) retry budget for transient failures\n\
                        (default 2); deterministic failures never retry\n\
           --socket PATH  (serve, submit, ctl) daemon Unix socket\n\
                        (default: canon-serve.sock)\n\
           --queue N    (serve) bounded queue capacity; submits beyond it\n\
                        get a busy reply with retry_after_ms (default 64)\n\
           --connections N  (submit) parallel client connections (default 4)\n\
           --baseline FILE  (bench) previous BENCH_sim.json to embed and\n\
                        compute speedups against\n\
           --reps N     (bench) interleaved batch-off/on pairs per large-tier\n\
                        cell (default 3; 0 skips the large tier)\n\
           --check      (bench) exit non-zero if the steady-state step loop\n\
                        exceeds the allocation gate (allocs/cycle) or the\n\
                        kernels/large-tier geomeans regress >10% against the\n\
                        baseline (--baseline FILE, else the committed\n\
                        BENCH_sim.json); a baseline without a large section\n\
                        skips that gate with a warning\n\
         exit codes: 0 ok; 1 fatal error; 2 usage; 3 sweep/submit completed\n\
                     with quarantined cell failures; 130 interrupted (SIGINT\n\
                     drain); 143 serve drained by SIGTERM"
    );
    std::process::exit(2)
}

/// Parses a `--faults` spec list (`KIND@CELL[:PARAM]`, comma-separated)
/// into a [`FaultPlan`] keyed by scenario index in grid order.
fn parse_faults(raw: &str) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for spec in raw.split(',').filter(|s| !s.is_empty()) {
        let Some((kind, rest)) = spec.split_once('@') else {
            eprintln!("--faults entries look like KIND@CELL[:PARAM], got {spec:?}");
            usage();
        };
        let (cell_str, param) = match rest.split_once(':') {
            Some((c, p)) => (c, Some(p)),
            None => (rest, None),
        };
        let Ok(cell) = cell_str.parse::<usize>() else {
            eprintln!("--faults cell index must be an integer, got {cell_str:?} in {spec:?}");
            usage();
        };
        let param_u64 = |default: u64| -> u64 {
            match param {
                Some(p) => p.parse().unwrap_or_else(|_| {
                    eprintln!("--faults parameter must be an integer, got {p:?} in {spec:?}");
                    usage();
                }),
                None => default,
            }
        };
        let action = match kind {
            "panic" => FaultAction::PanicAt {
                cycle: param_u64(0),
            },
            "deadlock" => FaultAction::WithholdCredits,
            // Half a second of injected wall time per simulated cycle: one
            // sleep overshoots any sane wall budget on its own, so the
            // timeout fires at the first post-sleep check and the record's
            // partial cycle count is deterministic (host jitter can only
            // add to an overshoot that already decides the outcome).
            "timeout" => FaultAction::SlowCycle {
                nanos: param_u64(500_000_000),
            },
            "transient" => FaultAction::Transient {
                failures: param_u64(1).min(u32::MAX as u64) as u32,
            },
            other => {
                eprintln!("--faults kind must be panic|deadlock|timeout|transient, got {other:?}");
                usage();
            }
        };
        plan.set(cell, action);
    }
    plan
}

fn parse_geometries(raw: &str) -> Vec<(usize, usize)> {
    raw.split(',')
        .map(|g| {
            let parse =
                |s: Option<&str>| s.and_then(|v| v.parse::<usize>().ok()).filter(|&v| v > 0);
            let mut parts = g.split('x');
            match (parse(parts.next()), parse(parts.next()), parts.next()) {
                (Some(r), Some(c), None) => (r, c),
                _ => {
                    eprintln!("--geom needs RxC entries, got {g:?}");
                    usage();
                }
            }
        })
        .collect()
}

fn take_value_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        eprintln!("{flag} needs a value");
        usage();
    }
    args.remove(pos);
    Some(args.remove(pos))
}

fn open_store(out: &str) -> ResultStore {
    ResultStore::open(out).unwrap_or_else(|e| {
        eprintln!("cannot open result store {out}: {e}");
        std::process::exit(1);
    })
}

/// Fault-tolerance knobs `main` threads into every `sweep` target run.
struct SweepRunOpts {
    resume: bool,
    fault_plan: FaultPlan,
    cell_wall_budget: Option<Duration>,
    cell_cycle_budget: Option<u64>,
    max_retries: u32,
    /// Steady-state replay engine on (the default engine configuration).
    /// `--no-replay` forces cycle-stepping so CI can byte-diff the two
    /// paths' result stores.
    replay: bool,
    shutdown: Arc<AtomicBool>,
}

/// The standard grid at the CLI's scale and geometry settings — shared by
/// the batch `sweep` target and the `submit` client's grid mode, so both
/// surfaces expand identical scenarios (and therefore identical store keys).
fn standard_grid(scale: Scale, geometries: &[(usize, usize)]) -> ScenarioGrid {
    let mut builder = GridBuilder::new()
        .scales(&[match scale {
            Scale::Full | Scale::Large => 1,
            Scale::Smoke => 4,
        }])
        .geometries(geometries);
    for w in standard_workloads() {
        builder = builder.workload(&w.name, w.template);
    }
    builder.build()
}

/// Takes the store's exclusive advisory lock, failing fast (exit 1) when a
/// daemon or concurrent sweep owns it.
fn lock_store(out: &str) -> StoreLock {
    StoreLock::acquire(Path::new(out)).unwrap_or_else(|e| {
        eprintln!("cannot lock result store {out}: {e}");
        std::process::exit(1);
    })
}

fn run_standard_sweep(
    scale: Scale,
    jobs: usize,
    out: &str,
    geometries: &[(usize, usize)],
    progress: bool,
    run: &SweepRunOpts,
    exit_code: &mut i32,
) -> String {
    let grid = standard_grid(scale, geometries);
    let _lock = lock_store(out);
    let mut store = open_store(out);
    let recovery = store.recovery();
    if recovery.has_damage() {
        let residue = format!(
            "{} unreadable line(s), {} torn-tail byte(s)",
            recovery.unreadable_lines, recovery.torn_tail_bytes
        );
        if run.resume {
            eprintln!(
                "resume: {} record(s) recovered from {out}; dropping {residue}",
                recovery.loaded
            );
        } else {
            eprintln!(
                "warning: result store {out} carries crash residue ({residue}); \
                 the sweep heals the tail on completion, or run `repro store gc`"
            );
        }
    } else if run.resume {
        eprintln!("resume: {} record(s) loaded from {out}", recovery.loaded);
    }
    let outcome = run_sweep(
        &grid,
        &mut store,
        &SweepOptions {
            jobs,
            progress,
            base_cfg: CanonConfig {
                replay: run.replay,
                ..CanonConfig::default()
            },
            cell_wall_budget: run.cell_wall_budget,
            cell_cycle_budget: run.cell_cycle_budget,
            max_retries: run.max_retries,
            fault_plan: run.fault_plan.clone(),
            shutdown: Some(run.shutdown.clone()),
            ..Default::default()
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("sweep failed: {e}");
        std::process::exit(1);
    });
    let s = outcome.stats;
    let mut text = format!(
        "== Sweep: {} cells ({} workload cells x {} architectures) ==\n\
         jobs={jobs}  executed={}  cache-hits={}  unsupported={}  errors={}  failed={}  retries={}\n\
         throughput: {:.0} simulated cycles/sec ({:.1} ms execution)\n\
         store: {out}\n\n",
        s.total,
        grid.cell_count(),
        canon_energy::Arch::all().len(),
        s.executed,
        s.cache_hits,
        s.unsupported,
        s.errors,
        s.failed,
        s.retries,
        s.cycles_per_sec(),
        s.wall_secs * 1e3,
    );
    text.push_str(&speedup_table(&outcome.records));
    text.push('\n');
    text.push_str(&edp_table(&outcome.records));
    if let Some(report) = quarantine_report_with(&outcome.records, Some(&s)) {
        text.push('\n');
        text.push_str(&report);
    }
    if s.interrupted {
        eprintln!(
            "sweep interrupted: {} of {} cell(s) resolved and journaled to {out}; \
             re-run with --resume to continue",
            outcome.records.len(),
            s.total
        );
        *exit_code = 130;
    } else if s.failed > 0 && *exit_code == 0 {
        // Healthy cells are all stored; the quarantined ones make the run
        // non-clean without making it fatal.
        *exit_code = 3;
    }
    text
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let scale = match (
        args.iter().position(|a| a == "--smoke"),
        args.iter().position(|a| a == "--large"),
    ) {
        (Some(_), Some(_)) => {
            eprintln!("--smoke and --large are mutually exclusive");
            usage();
        }
        (Some(pos), None) => {
            args.remove(pos);
            Scale::Smoke
        }
        (None, Some(pos)) => {
            args.remove(pos);
            Scale::Large
        }
        (None, None) => Scale::Full,
    };
    let progress = if let Some(pos) = args.iter().position(|a| a == "--progress") {
        args.remove(pos);
        true
    } else {
        false
    };
    let jobs = match take_value_flag(&mut args, "--jobs") {
        Some(v) => match v.parse() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("--jobs needs a positive integer, got {v}");
                usage();
            }
        },
        None => std::thread::available_parallelism().map_or(1, |n| n.get()),
    };
    let out_flag = take_value_flag(&mut args, "--out");
    let baseline_flag = take_value_flag(&mut args, "--baseline");
    let out = out_flag
        .clone()
        .unwrap_or_else(|| "sweep_results.jsonl".into());
    let geometries = take_value_flag(&mut args, "--geom").map_or_else(
        || match scale {
            // The large tier sweeps its first-class fabric geometries by
            // default; explicit --geom still overrides.
            Scale::Large => canon_sweep::scenario::large_geometries().to_vec(),
            Scale::Full | Scale::Smoke => vec![(8, 8)],
        },
        |raw| parse_geometries(&raw),
    );
    let large_reps = match take_value_flag(&mut args, "--reps") {
        Some(v) => match v.parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("--reps needs a non-negative integer, got {v}");
                usage();
            }
        },
        None => 3,
    };
    let resume = if let Some(pos) = args.iter().position(|a| a == "--resume") {
        args.remove(pos);
        true
    } else {
        false
    };
    let replay = if let Some(pos) = args.iter().position(|a| a == "--no-replay") {
        args.remove(pos);
        false
    } else {
        true
    };
    let fault_plan = take_value_flag(&mut args, "--faults")
        .map_or_else(FaultPlan::new, |raw| parse_faults(&raw));
    let parse_u64_flag = |args: &mut Vec<String>, flag: &str| -> Option<u64> {
        take_value_flag(args, flag).map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("{flag} needs a non-negative integer, got {v}");
                usage();
            })
        })
    };
    let mut cell_wall_budget =
        parse_u64_flag(&mut args, "--cell-timeout-ms").map(Duration::from_millis);
    let cell_cycle_budget = parse_u64_flag(&mut args, "--cell-cycles");
    let max_retries =
        parse_u64_flag(&mut args, "--retries").map_or(2, |n| n.min(u32::MAX as u64) as u32);
    let socket =
        take_value_flag(&mut args, "--socket").unwrap_or_else(|| "canon-serve.sock".into());
    let queue_capacity = parse_u64_flag(&mut args, "--queue").map_or(64, |n| n.max(1) as usize);
    let connections = parse_u64_flag(&mut args, "--connections").map_or(4, |n| n.max(1) as usize);
    let workload_flag = take_value_flag(&mut args, "--workload");
    let band_flag = take_value_flag(&mut args, "--band");
    let arch_flag = take_value_flag(&mut args, "--arch");
    let seed_flag = parse_u64_flag(&mut args, "--seed");
    let fault_flag = take_value_flag(&mut args, "--fault");
    if cell_wall_budget.is_none()
        && fault_plan
            .iter()
            .any(|(_, a)| matches!(a, FaultAction::SlowCycle { .. }))
    {
        // A slow cell only quarantines as a timeout under a wall budget;
        // default one so `--faults timeout@N` works standalone. 100 ms is
        // well under a single injected 500 ms sleep, keeping the recorded
        // partial cycle count deterministic (see `parse_faults`).
        eprintln!("note: --faults injects a timeout without --cell-timeout-ms; defaulting to 100");
        cell_wall_budget = Some(Duration::from_millis(100));
    }
    if args.is_empty() {
        usage();
    }
    // `bench` measures simulator throughput and writes the JSON baseline.
    if args[0] == "bench" {
        let check = if let Some(pos) = args.iter().position(|a| a == "--check") {
            args.remove(pos);
            true
        } else {
            false
        };
        if args.len() != 1 {
            usage();
        }
        // Read the baseline up front: a bad path must fail before the
        // multi-minute measurement suite, not after.
        let baseline = baseline_flag.map(|p| {
            std::fs::read_to_string(&p).unwrap_or_else(|e| {
                eprintln!("cannot read baseline {p}: {e}");
                std::process::exit(1);
            })
        });
        COUNTING.store(true, Ordering::Relaxed);
        let report = bench::run_bench(scale, jobs, Some(alloc_snapshot), large_reps);
        print!("{}", bench::render_text(&report));
        let json = bench::render_json(&report, baseline.as_deref());
        let path = out_flag.unwrap_or_else(|| "BENCH_sim.json".into());
        std::fs::write(&path, &json).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("bench report written to {path}");
        if check {
            match bench::check_alloc_gate(&report) {
                Ok(()) => println!(
                    "allocation gate passed (<= {} allocs/cycle)",
                    bench::MAX_ALLOCS_PER_CYCLE
                ),
                Err(msg) => {
                    eprintln!("allocation gate FAILED: {msg}");
                    std::process::exit(1);
                }
            }
            // Throughput gate: compare against --baseline FILE, or the
            // committed BENCH_sim.json when none was given.
            let gate_baseline = match &baseline {
                Some(b) => Some(b.clone()),
                None => std::fs::read_to_string("BENCH_sim.json").ok(),
            };
            match gate_baseline {
                Some(b) => {
                    match bench::check_throughput_gate(&report, &b) {
                        Ok(()) => println!(
                            "throughput gate passed (kernels geomean >= {}x of baseline)",
                            bench::MIN_KERNELS_GEOMEAN
                        ),
                        Err(msg) => {
                            eprintln!("throughput gate FAILED: {msg}");
                            std::process::exit(1);
                        }
                    }
                    match bench::check_large_gate(&report, &b) {
                        Ok(Some(g)) => println!(
                            "large-tier gate passed (geomean {g:.3}x >= {}x of baseline)",
                            bench::MIN_KERNELS_GEOMEAN
                        ),
                        Ok(None) => eprintln!(
                            "large-tier gate skipped: tier absent from this run or the baseline"
                        ),
                        Err(msg) => {
                            eprintln!("large-tier gate FAILED: {msg}");
                            std::process::exit(1);
                        }
                    }
                }
                None => {
                    eprintln!(
                        "throughput gate skipped: no --baseline and no committed BENCH_sim.json"
                    );
                }
            }
        }
        return;
    }
    // `trace` / `profile` capture the pinned golden SpMM scenario through
    // the cycle-trace layer and export it.
    if args[0] == "trace" || args[0] == "profile" {
        if args.len() != 1 {
            usage();
        }
        let mut fabric = bench::golden_trace_fabric();
        let sink = VecSink::default();
        fabric.set_trace_sink(Box::new(sink.clone()));
        let report = fabric.run().unwrap_or_else(|e| {
            eprintln!("golden trace scenario failed: {e}");
            std::process::exit(1);
        });
        fabric.take_trace_sink();
        let events = sink.take_events();
        if args[0] == "trace" {
            let path = out_flag.unwrap_or_else(|| "trace.json".into());
            let mut file =
                std::io::BufWriter::new(std::fs::File::create(&path).unwrap_or_else(|e| {
                    eprintln!("cannot create {path}: {e}");
                    std::process::exit(1);
                }));
            write_chrome_trace(&events, &mut file)
                .and_then(|()| std::io::Write::flush(&mut file))
                .unwrap_or_else(|e| {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(1);
                });
            println!(
                "wrote {} trace events ({} cycles, {} stall cycles) to {path}",
                events.len(),
                report.cycles,
                report.stats.stall_cycles
            );
            println!("open in Perfetto (ui.perfetto.dev) or chrome://tracing");
        } else {
            print!("{}", render_profile(&events));
        }
        return;
    }
    // `serve` hands the process to the resident daemon; the process exit
    // code is the daemon's drain code (0 protocol, 130 SIGINT, 143 SIGTERM).
    if args[0] == "serve" {
        if args.len() != 1 {
            usage();
        }
        let opts = ServeOptions {
            socket: socket.clone().into(),
            store: out.clone().into(),
            workers: jobs,
            queue_capacity,
            base_cfg: CanonConfig {
                replay,
                wall_budget_ns: cell_wall_budget.map(|d| d.as_nanos() as u64),
                max_cycles: cell_cycle_budget,
                ..CanonConfig::default()
            },
            max_retries,
            retry_backoff: Duration::from_millis(10),
            signal: Some(install_serve_signals()),
        };
        eprintln!(
            "serve: listening on {socket} over store {out} ({jobs} worker(s), queue {queue_capacity})"
        );
        match canon_serve::run_daemon(&opts) {
            Ok(code) => {
                eprintln!("serve: drained, exiting {code}");
                std::process::exit(code);
            }
            Err(e) => {
                eprintln!("serve failed: {e}");
                std::process::exit(1);
            }
        }
    }
    // `submit` is the daemon's client: the standard grid by default, or a
    // single cell when --workload is given.
    if args[0] == "submit" {
        if args.len() != 1 {
            usage();
        }
        let submits: Vec<SubmitRequest> = match &workload_flag {
            Some(workload) => {
                let mut req = SubmitRequest::new("cell-0", workload.as_str());
                req.scale = match scale {
                    Scale::Full | Scale::Large => 1,
                    Scale::Smoke => 4,
                };
                req.geometry = geometries[0];
                req.band = band_flag.as_deref().map(|label| {
                    canon_serve::protocol::band_from_label(label).unwrap_or_else(|| {
                        eprintln!("--band must be S1|S2|S3, got {label:?}");
                        usage();
                    })
                });
                if let Some(label) = &arch_flag {
                    req.arch = canon_serve::protocol::arch_from_label(label).unwrap_or_else(|| {
                        eprintln!("unknown --arch {label:?}");
                        usage();
                    });
                }
                req.seed = seed_flag;
                req.max_cycles = cell_cycle_budget;
                req.wall_budget_ns = cell_wall_budget.map(|d| d.as_nanos() as u64);
                req.fault = fault_flag.as_deref().map(|desc| {
                    FaultAction::from_descriptor(desc).unwrap_or_else(|| {
                        eprintln!(
                            "--fault must be a descriptor (panic@N, withhold-credits, \
                             slow:Nns, transient:N), got {desc:?}"
                        );
                        usage();
                    })
                });
                vec![req]
            }
            // Grid mode mirrors the batch sweep exactly — same expansion,
            // same per-index --faults semantics, same budgets — so a served
            // grid and a swept grid land on identical store keys.
            None => standard_grid(scale, &geometries)
                .scenarios
                .iter()
                .enumerate()
                .map(|(i, s)| SubmitRequest {
                    id: format!("cell-{i}"),
                    workload: s.workload.clone(),
                    band: s.band,
                    scale: s.scale,
                    geometry: s.geometry,
                    arch: s.arch,
                    seed: Some(s.seed),
                    max_cycles: cell_cycle_budget,
                    wall_budget_ns: cell_wall_budget.map(|d| d.as_nanos() as u64),
                    fault: fault_plan.action_for(i),
                })
                .collect(),
        };
        let outcome = canon_serve::submit_batch(Path::new(&socket), &submits, connections, 20)
            .unwrap_or_else(|e| {
                eprintln!("cannot reach daemon on {socket}: {e}");
                std::process::exit(1);
            });
        for reply in outcome.replies.iter().flatten() {
            println!("{}", reply.to_line());
        }
        eprintln!(
            "submit: {} cell(s): {} ok ({} cached, {} coalesced), {} unsupported, \
             {} quarantined, {} error(s), {} refused",
            submits.len(),
            outcome.ok,
            outcome.cached,
            outcome.coalesced,
            outcome.unsupported,
            outcome.failed,
            outcome.errors,
            outcome.refused,
        );
        let code = if outcome.errors > 0 || outcome.refused > 0 {
            1
        } else if outcome.failed > 0 {
            3
        } else {
            0
        };
        std::process::exit(code);
    }
    // `ctl` sends one control command to a running daemon.
    if args[0] == "ctl" {
        let request = match args.get(1).map(String::as_str) {
            Some("status") if args.len() == 2 => Request::Status,
            Some("drain") if args.len() == 2 => Request::Drain,
            Some("shutdown") if args.len() == 2 => Request::Shutdown,
            _ => usage(),
        };
        let mut client = Client::connect(&socket).unwrap_or_else(|e| {
            eprintln!("cannot reach daemon on {socket}: {e}");
            std::process::exit(1);
        });
        match client.request(&request) {
            Ok(reply) => println!("{}", reply.to_line()),
            Err(e) => {
                eprintln!("ctl failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    // `store <subcommand>` maintains the result store instead of producing
    // figure output.
    if args[0] == "store" {
        match args.get(1).map(String::as_str) {
            Some("gc") if args.len() == 2 => {
                let _lock = lock_store(&out);
                let mut store = open_store(&out);
                let stats = store.compact().unwrap_or_else(|e| {
                    eprintln!("store gc failed: {e}");
                    std::process::exit(1);
                });
                println!(
                    "store gc: kept {} records, dropped {} stale-salt, {} unreadable, \
                     recovered {} torn-tail byte(s) ({out})",
                    stats.kept,
                    stats.dropped_stale,
                    stats.dropped_unreadable,
                    stats.recovered_torn_bytes
                );
                return;
            }
            _ => usage(),
        }
    }
    let targets: Vec<String> = if args.iter().any(|a| a == "all") {
        [
            "sweep",
            "table1",
            "fig9",
            "fig10",
            "fig11",
            "fig12+13",
            "fig14",
            "fig15",
            "fig16",
            "fig17",
            "ablation-async",
            "ablation-buffer-sizing",
            "ablation-lut",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    } else {
        args
    };
    let run_opts = SweepRunOpts {
        resume,
        fault_plan,
        cell_wall_budget,
        cell_cycle_budget,
        max_retries,
        replay,
        shutdown: install_sigint_flag(),
    };
    let mut exit_code = 0;
    for t in targets {
        let text = match t.as_str() {
            "sweep" => run_standard_sweep(
                scale,
                jobs,
                &out,
                &geometries,
                progress,
                &run_opts,
                &mut exit_code,
            ),
            "table1" => figures::table1(),
            "fig9" => figures::fig09(),
            "fig10" => figures::fig10(),
            "fig11" => figures::fig11(scale),
            "fig12" => figures::fig12(scale),
            "fig13" => figures::fig13(scale),
            "fig12+13" => figures::fig1213(scale),
            "fig14" => figures::fig14(scale),
            "fig15" => figures::fig15(scale),
            "fig16" => figures::fig16(),
            "fig17" => figures::fig17(scale),
            "ablation-async" => ablations::ablation_async(scale),
            "ablation-buffer-sizing" => ablations::ablation_buffer_sizing(scale),
            "ablation-lut" => ablations::ablation_lut(scale),
            other => {
                eprintln!("unknown target: {other}");
                usage();
            }
        };
        println!("{text}");
        if exit_code == 130 {
            // SIGINT: the sweep drained and flushed; skip remaining targets
            // so the shell gets the interrupt status promptly.
            break;
        }
    }
    if exit_code != 0 {
        std::process::exit(exit_code);
    }
}
