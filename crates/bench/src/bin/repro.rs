//! `repro` — regenerate the paper's tables and figures, run multi-backend
//! scenario sweeps, and maintain the sweep result store.
//!
//! ```sh
//! cargo run -p canon-bench --release --bin repro -- all --jobs 8
//! cargo run -p canon-bench --release --bin repro -- fig12 fig13
//! cargo run -p canon-bench --release --bin repro -- --smoke fig17
//! cargo run -p canon-bench --release --bin repro -- sweep --jobs 4 --out results.jsonl
//! cargo run -p canon-bench --release --bin repro -- sweep --geom 8x8,16x16
//! cargo run -p canon-bench --release --bin repro -- store gc --out results.jsonl
//! cargo run -p canon-bench --release --bin repro -- trace --out trace.json
//! cargo run -p canon-bench --release --bin repro -- profile
//! ```
//!
//! The `sweep` target (also the first step of `all`) expands the standard
//! architecture × workload × band × geometry grid — tensor kernels *and*
//! PolyBench loop nests, with baselines provisioned iso-MAC at every
//! `--geom` point — fans it out over `--jobs` worker threads through the
//! `canon-sweep` engine, and writes/updates the JSONL result store at
//! `--out`. Cells already present in the store under their content key are
//! reported as cache hits and not re-simulated. `store gc` compacts the
//! store, dropping records stranded by `CODE_SALT`/schema bumps.

use canon_bench::{ablations, bench, figures, Scale};
use canon_core::trace::{render_profile, write_chrome_trace, VecSink};
use canon_sweep::engine::{run_sweep, SweepOptions};
use canon_sweep::report::{edp_table, speedup_table};
use canon_sweep::scenario::{standard_workloads, GridBuilder};
use canon_sweep::store::ResultStore;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A counting wrapper around the system allocator, powering `repro bench`'s
/// steady-state allocation profile (allocations per simulated cycle). The
/// counters only tick while `COUNTING` is set (the bench target), so every
/// other `repro` run pays a single relaxed load per allocation and no
/// shared read-modify-write traffic.
struct CountingAlloc;

static COUNTING: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);
static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System`; the counters are purely
// observational.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
            ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
            ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_snapshot() -> (u64, u64) {
    (
        ALLOC_COUNT.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

fn usage() -> ! {
    eprintln!(
        "usage: repro [--smoke|--large] [--jobs N] [--out FILE] [--geom RxC[,RxC...]] <targets...>\n\
         targets: table1 fig9 fig10 fig11 fig12 fig13 fig14 fig15 fig16 fig17\n\
                  ablation-async ablation-buffer-sizing ablation-lut sweep all\n\
                  store gc\n\
                  bench [--baseline FILE] [--check] [--reps N]   (writes BENCH_sim.json)\n\
                  trace [--out FILE]   capture the golden SpMM scenario as a\n\
                        Perfetto-loadable Chrome trace (default: trace.json)\n\
                  profile   textual stall/occupancy profile of the same run\n\
         options:\n\
           --smoke      reduced problem sizes (CI-scale)\n\
           --large      large-fabric tier: doubled problem sizes; sweep\n\
                        defaults to the 64x64,128x64 geometries\n\
           --progress   (sweep) live progress line on stderr (cells done,\n\
                        cells/sec, operand-cache + store hit rates)\n\
           --jobs N     sweep worker threads (default: all cores)\n\
           --out FILE   sweep result store (default: sweep_results.jsonl);\n\
                        for bench, the report file (default: BENCH_sim.json)\n\
           --geom LIST  sweep fabric geometries, e.g. 8x8,16x16 (default: 8x8,\n\
                        or 64x64,128x64 under --large); baselines are\n\
                        provisioned iso-MAC at each point\n\
           --baseline FILE  (bench) previous BENCH_sim.json to embed and\n\
                        compute speedups against\n\
           --reps N     (bench) interleaved batch-off/on pairs per large-tier\n\
                        cell (default 3; 0 skips the large tier)\n\
           --check      (bench) exit non-zero if the steady-state step loop\n\
                        exceeds the allocation gate (allocs/cycle) or the\n\
                        kernels/large-tier geomeans regress >10% against the\n\
                        baseline (--baseline FILE, else the committed\n\
                        BENCH_sim.json); a baseline without a large section\n\
                        skips that gate with a warning"
    );
    std::process::exit(2)
}

fn parse_geometries(raw: &str) -> Vec<(usize, usize)> {
    raw.split(',')
        .map(|g| {
            let parse =
                |s: Option<&str>| s.and_then(|v| v.parse::<usize>().ok()).filter(|&v| v > 0);
            let mut parts = g.split('x');
            match (parse(parts.next()), parse(parts.next()), parts.next()) {
                (Some(r), Some(c), None) => (r, c),
                _ => {
                    eprintln!("--geom needs RxC entries, got {g:?}");
                    usage();
                }
            }
        })
        .collect()
}

fn take_value_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        eprintln!("{flag} needs a value");
        usage();
    }
    args.remove(pos);
    Some(args.remove(pos))
}

fn open_store(out: &str) -> ResultStore {
    ResultStore::open(out).unwrap_or_else(|e| {
        eprintln!("cannot open result store {out}: {e}");
        std::process::exit(1);
    })
}

fn run_standard_sweep(
    scale: Scale,
    jobs: usize,
    out: &str,
    geometries: &[(usize, usize)],
    progress: bool,
) -> String {
    let mut builder = GridBuilder::new()
        .scales(&[match scale {
            Scale::Full | Scale::Large => 1,
            Scale::Smoke => 4,
        }])
        .geometries(geometries);
    for w in standard_workloads() {
        builder = builder.workload(&w.name, w.template);
    }
    let grid = builder.build();
    let mut store = open_store(out);
    let outcome = run_sweep(
        &grid,
        &mut store,
        &SweepOptions {
            jobs,
            progress,
            ..Default::default()
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("sweep failed: {e}");
        std::process::exit(1);
    });
    let s = outcome.stats;
    let mut text = format!(
        "== Sweep: {} cells ({} workload cells x {} architectures) ==\n\
         jobs={jobs}  executed={}  cache-hits={}  unsupported={}  errors={}\n\
         throughput: {:.0} simulated cycles/sec ({:.1} ms execution)\n\
         store: {out}\n\n",
        s.total,
        grid.cell_count(),
        canon_energy::Arch::all().len(),
        s.executed,
        s.cache_hits,
        s.unsupported,
        s.errors,
        s.cycles_per_sec(),
        s.wall_secs * 1e3,
    );
    text.push_str(&speedup_table(&outcome.records));
    text.push('\n');
    text.push_str(&edp_table(&outcome.records));
    text
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let scale = match (
        args.iter().position(|a| a == "--smoke"),
        args.iter().position(|a| a == "--large"),
    ) {
        (Some(_), Some(_)) => {
            eprintln!("--smoke and --large are mutually exclusive");
            usage();
        }
        (Some(pos), None) => {
            args.remove(pos);
            Scale::Smoke
        }
        (None, Some(pos)) => {
            args.remove(pos);
            Scale::Large
        }
        (None, None) => Scale::Full,
    };
    let progress = if let Some(pos) = args.iter().position(|a| a == "--progress") {
        args.remove(pos);
        true
    } else {
        false
    };
    let jobs = match take_value_flag(&mut args, "--jobs") {
        Some(v) => match v.parse() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("--jobs needs a positive integer, got {v}");
                usage();
            }
        },
        None => std::thread::available_parallelism().map_or(1, |n| n.get()),
    };
    let out_flag = take_value_flag(&mut args, "--out");
    let baseline_flag = take_value_flag(&mut args, "--baseline");
    let out = out_flag
        .clone()
        .unwrap_or_else(|| "sweep_results.jsonl".into());
    let geometries = take_value_flag(&mut args, "--geom").map_or_else(
        || match scale {
            // The large tier sweeps its first-class fabric geometries by
            // default; explicit --geom still overrides.
            Scale::Large => canon_sweep::scenario::large_geometries().to_vec(),
            Scale::Full | Scale::Smoke => vec![(8, 8)],
        },
        |raw| parse_geometries(&raw),
    );
    let large_reps = match take_value_flag(&mut args, "--reps") {
        Some(v) => match v.parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("--reps needs a non-negative integer, got {v}");
                usage();
            }
        },
        None => 3,
    };
    if args.is_empty() {
        usage();
    }
    // `bench` measures simulator throughput and writes the JSON baseline.
    if args[0] == "bench" {
        let check = if let Some(pos) = args.iter().position(|a| a == "--check") {
            args.remove(pos);
            true
        } else {
            false
        };
        if args.len() != 1 {
            usage();
        }
        // Read the baseline up front: a bad path must fail before the
        // multi-minute measurement suite, not after.
        let baseline = baseline_flag.map(|p| {
            std::fs::read_to_string(&p).unwrap_or_else(|e| {
                eprintln!("cannot read baseline {p}: {e}");
                std::process::exit(1);
            })
        });
        COUNTING.store(true, Ordering::Relaxed);
        let report = bench::run_bench(scale, jobs, Some(alloc_snapshot), large_reps);
        print!("{}", bench::render_text(&report));
        let json = bench::render_json(&report, baseline.as_deref());
        let path = out_flag.unwrap_or_else(|| "BENCH_sim.json".into());
        std::fs::write(&path, &json).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("bench report written to {path}");
        if check {
            match bench::check_alloc_gate(&report) {
                Ok(()) => println!(
                    "allocation gate passed (<= {} allocs/cycle)",
                    bench::MAX_ALLOCS_PER_CYCLE
                ),
                Err(msg) => {
                    eprintln!("allocation gate FAILED: {msg}");
                    std::process::exit(1);
                }
            }
            // Throughput gate: compare against --baseline FILE, or the
            // committed BENCH_sim.json when none was given.
            let gate_baseline = match &baseline {
                Some(b) => Some(b.clone()),
                None => std::fs::read_to_string("BENCH_sim.json").ok(),
            };
            match gate_baseline {
                Some(b) => {
                    match bench::check_throughput_gate(&report, &b) {
                        Ok(()) => println!(
                            "throughput gate passed (kernels geomean >= {}x of baseline)",
                            bench::MIN_KERNELS_GEOMEAN
                        ),
                        Err(msg) => {
                            eprintln!("throughput gate FAILED: {msg}");
                            std::process::exit(1);
                        }
                    }
                    match bench::check_large_gate(&report, &b) {
                        Ok(Some(g)) => println!(
                            "large-tier gate passed (geomean {g:.3}x >= {}x of baseline)",
                            bench::MIN_KERNELS_GEOMEAN
                        ),
                        Ok(None) => eprintln!(
                            "large-tier gate skipped: tier absent from this run or the baseline"
                        ),
                        Err(msg) => {
                            eprintln!("large-tier gate FAILED: {msg}");
                            std::process::exit(1);
                        }
                    }
                }
                None => {
                    eprintln!(
                        "throughput gate skipped: no --baseline and no committed BENCH_sim.json"
                    );
                }
            }
        }
        return;
    }
    // `trace` / `profile` capture the pinned golden SpMM scenario through
    // the cycle-trace layer and export it.
    if args[0] == "trace" || args[0] == "profile" {
        if args.len() != 1 {
            usage();
        }
        let mut fabric = bench::golden_trace_fabric();
        let sink = VecSink::default();
        fabric.set_trace_sink(Box::new(sink.clone()));
        let report = fabric.run().unwrap_or_else(|e| {
            eprintln!("golden trace scenario failed: {e}");
            std::process::exit(1);
        });
        fabric.take_trace_sink();
        let events = sink.take_events();
        if args[0] == "trace" {
            let path = out_flag.unwrap_or_else(|| "trace.json".into());
            let mut file =
                std::io::BufWriter::new(std::fs::File::create(&path).unwrap_or_else(|e| {
                    eprintln!("cannot create {path}: {e}");
                    std::process::exit(1);
                }));
            write_chrome_trace(&events, &mut file)
                .and_then(|()| std::io::Write::flush(&mut file))
                .unwrap_or_else(|e| {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(1);
                });
            println!(
                "wrote {} trace events ({} cycles, {} stall cycles) to {path}",
                events.len(),
                report.cycles,
                report.stats.stall_cycles
            );
            println!("open in Perfetto (ui.perfetto.dev) or chrome://tracing");
        } else {
            print!("{}", render_profile(&events));
        }
        return;
    }
    // `store <subcommand>` maintains the result store instead of producing
    // figure output.
    if args[0] == "store" {
        match args.get(1).map(String::as_str) {
            Some("gc") if args.len() == 2 => {
                let mut store = open_store(&out);
                let stats = store.compact().unwrap_or_else(|e| {
                    eprintln!("store gc failed: {e}");
                    std::process::exit(1);
                });
                println!(
                    "store gc: kept {} records, dropped {} stale-salt, {} unreadable ({out})",
                    stats.kept, stats.dropped_stale, stats.dropped_unreadable
                );
                return;
            }
            _ => usage(),
        }
    }
    let targets: Vec<String> = if args.iter().any(|a| a == "all") {
        [
            "sweep",
            "table1",
            "fig9",
            "fig10",
            "fig11",
            "fig12+13",
            "fig14",
            "fig15",
            "fig16",
            "fig17",
            "ablation-async",
            "ablation-buffer-sizing",
            "ablation-lut",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    } else {
        args
    };
    for t in targets {
        let text = match t.as_str() {
            "sweep" => run_standard_sweep(scale, jobs, &out, &geometries, progress),
            "table1" => figures::table1(),
            "fig9" => figures::fig09(),
            "fig10" => figures::fig10(),
            "fig11" => figures::fig11(scale),
            "fig12" => figures::fig12(scale),
            "fig13" => figures::fig13(scale),
            "fig12+13" => figures::fig1213(scale),
            "fig14" => figures::fig14(scale),
            "fig15" => figures::fig15(scale),
            "fig16" => figures::fig16(),
            "fig17" => figures::fig17(scale),
            "ablation-async" => ablations::ablation_async(scale),
            "ablation-buffer-sizing" => ablations::ablation_buffer_sizing(scale),
            "ablation-lut" => ablations::ablation_lut(scale),
            other => {
                eprintln!("unknown target: {other}");
                usage();
            }
        };
        println!("{text}");
    }
}
