//! `repro` — regenerate the paper's tables and figures, and run
//! multi-backend scenario sweeps.
//!
//! ```sh
//! cargo run -p canon-bench --release --bin repro -- all --jobs 8
//! cargo run -p canon-bench --release --bin repro -- fig12 fig13
//! cargo run -p canon-bench --release --bin repro -- --smoke fig17
//! cargo run -p canon-bench --release --bin repro -- sweep --jobs 4 --out results.jsonl
//! ```
//!
//! The `sweep` target (also the first step of `all`) expands the standard
//! architecture × workload × band grid, fans it out over `--jobs` worker
//! threads through the `canon-sweep` engine, and writes/updates the JSONL
//! result store at `--out`. Cells already present in the store under their
//! content key are reported as cache hits and not re-simulated.

use canon_bench::{ablations, figures, Scale};
use canon_sweep::engine::{run_sweep, SweepOptions};
use canon_sweep::report::{edp_table, speedup_table};
use canon_sweep::scenario::ScenarioGrid;
use canon_sweep::store::ResultStore;

fn usage() -> ! {
    eprintln!(
        "usage: repro [--smoke] [--jobs N] [--out FILE] <targets...>\n\
         targets: table1 fig9 fig10 fig11 fig12 fig13 fig14 fig15 fig16 fig17\n\
                  ablation-async ablation-buffer-sizing ablation-lut sweep all\n\
         options:\n\
           --smoke      reduced problem sizes (CI-scale)\n\
           --jobs N     sweep worker threads (default: all cores)\n\
           --out FILE   sweep result store (default: sweep_results.jsonl)"
    );
    std::process::exit(2)
}

fn take_value_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        eprintln!("{flag} needs a value");
        usage();
    }
    args.remove(pos);
    Some(args.remove(pos))
}

fn run_standard_sweep(scale: Scale, jobs: usize, out: &str) -> String {
    let grid = ScenarioGrid::standard(match scale {
        Scale::Full => 1,
        Scale::Smoke => 4,
    });
    let mut store = ResultStore::open(out).unwrap_or_else(|e| {
        eprintln!("cannot open result store {out}: {e}");
        std::process::exit(1);
    });
    let outcome = run_sweep(
        &grid,
        &mut store,
        &SweepOptions {
            jobs,
            ..Default::default()
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("sweep failed: {e}");
        std::process::exit(1);
    });
    let s = outcome.stats;
    let mut text = format!(
        "== Sweep: {} cells ({} workloads x {} architectures) ==\n\
         jobs={jobs}  executed={}  cache-hits={}  unsupported={}  errors={}\n\
         store: {out}\n\n",
        s.total,
        grid.cell_count(),
        canon_energy::Arch::all().len(),
        s.executed,
        s.cache_hits,
        s.unsupported,
        s.errors,
    );
    text.push_str(&speedup_table(&outcome.records));
    text.push('\n');
    text.push_str(&edp_table(&outcome.records));
    text
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if let Some(pos) = args.iter().position(|a| a == "--smoke") {
        args.remove(pos);
        Scale::Smoke
    } else {
        Scale::Full
    };
    let jobs = match take_value_flag(&mut args, "--jobs") {
        Some(v) => match v.parse() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("--jobs needs a positive integer, got {v}");
                usage();
            }
        },
        None => std::thread::available_parallelism().map_or(1, |n| n.get()),
    };
    let out = take_value_flag(&mut args, "--out").unwrap_or_else(|| "sweep_results.jsonl".into());
    if args.is_empty() {
        usage();
    }
    let targets: Vec<String> = if args.iter().any(|a| a == "all") {
        [
            "sweep",
            "table1",
            "fig9",
            "fig10",
            "fig11",
            "fig12+13",
            "fig14",
            "fig15",
            "fig16",
            "fig17",
            "ablation-async",
            "ablation-buffer-sizing",
            "ablation-lut",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    } else {
        args
    };
    for t in targets {
        let text = match t.as_str() {
            "sweep" => run_standard_sweep(scale, jobs, &out),
            "table1" => figures::table1(),
            "fig9" => figures::fig09(),
            "fig10" => figures::fig10(),
            "fig11" => figures::fig11(scale),
            "fig12" => figures::fig12(scale),
            "fig13" => figures::fig13(scale),
            "fig12+13" => figures::fig1213(scale),
            "fig14" => figures::fig14(scale),
            "fig15" => figures::fig15(scale),
            "fig16" => figures::fig16(),
            "fig17" => figures::fig17(scale),
            "ablation-async" => ablations::ablation_async(scale),
            "ablation-buffer-sizing" => ablations::ablation_buffer_sizing(scale),
            "ablation-lut" => ablations::ablation_lut(scale),
            other => {
                eprintln!("unknown target: {other}");
                usage();
            }
        };
        println!("{text}");
    }
}
