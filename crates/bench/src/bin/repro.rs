//! `repro` — regenerate the paper's tables and figures.
//!
//! ```sh
//! cargo run -p canon-bench --release --bin repro -- all
//! cargo run -p canon-bench --release --bin repro -- fig12 fig13
//! cargo run -p canon-bench --release --bin repro -- --smoke fig17
//! ```

use canon_bench::{ablations, figures, Scale};

fn usage() -> ! {
    eprintln!(
        "usage: repro [--smoke] <targets...>\n\
         targets: table1 fig9 fig10 fig11 fig12 fig13 fig14 fig15 fig16 fig17\n\
                  ablation-async ablation-buffer-sizing ablation-lut all"
    );
    std::process::exit(2)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if let Some(pos) = args.iter().position(|a| a == "--smoke") {
        args.remove(pos);
        Scale::Smoke
    } else {
        Scale::Full
    };
    if args.is_empty() {
        usage();
    }
    let targets: Vec<String> = if args.iter().any(|a| a == "all") {
        [
            "table1", "fig9", "fig10", "fig11", "fig12+13", "fig14", "fig15", "fig16", "fig17",
            "ablation-async", "ablation-buffer-sizing", "ablation-lut",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    } else {
        args
    };
    for t in targets {
        let text = match t.as_str() {
            "table1" => figures::table1(),
            "fig9" => figures::fig09(),
            "fig10" => figures::fig10(),
            "fig11" => figures::fig11(scale),
            "fig12" => figures::fig12(scale),
            "fig13" => figures::fig13(scale),
            "fig12+13" => figures::fig1213(scale),
            "fig14" => figures::fig14(scale),
            "fig15" => figures::fig15(scale),
            "fig16" => figures::fig16(),
            "fig17" => figures::fig17(scale),
            "ablation-async" => ablations::ablation_async(scale),
            "ablation-buffer-sizing" => ablations::ablation_buffer_sizing(scale),
            "ablation-lut" => ablations::ablation_lut(scale),
            other => {
                eprintln!("unknown target: {other}");
                usage();
            }
        };
        println!("{text}");
    }
}
