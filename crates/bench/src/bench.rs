//! `repro bench` — the simulator performance baseline (`BENCH_sim.json`).
//!
//! Three families of measurements, all on the code paths the figures and
//! sweeps actually execute:
//!
//! * **kernels** — every Fig 12 tensor workload on the Canon cycle
//!   simulator, repeated until the wall-clock sample is stable, reporting
//!   simulated **cycles per host second** (the simulator-throughput metric;
//!   wall time is taken from [`RunReport::wall_ns`], i.e. the fabric step
//!   loop only, excluding operand materialization);
//! * **steady state** — one fabric-level SpMM run bracketed by the harness's
//!   global allocation counter, reporting allocations per simulated cycle
//!   (the zero-allocation-step-loop evidence);
//! * **figures / sweep** — end-to-end wall time of the multi-backend figure
//!   harness and of a cold standard sweep (cells include baselines and
//!   operand materialization, so this measures the whole pipeline).
//!
//! When a baseline report (an earlier `BENCH_sim.json`) is supplied, each
//! section carries `baseline_*` fields and a `speedup` ratio, and the
//! baseline report is embedded verbatim under `"baseline"` — the file is
//! then a self-contained before/after record.

use crate::workloads12::tensor_ops;
use crate::{figures, Scale};
use canon_core::kernels::run_kernel;
use canon_core::kernels::spmm::{build_row_streams, preload_b_tile, SpmmFsm};
use canon_core::stats::RunReport;
use canon_core::{CanonConfig, Fabric};
use canon_sparse::{gen, Dense};
use canon_sweep::backend::{kernel_input, CanonBackend};
use canon_sweep::engine::{run_sweep, SweepOptions};
use canon_sweep::scenario::{large_geometries, standard_workloads, GridBuilder};
use canon_sweep::store::ResultStore;
use canon_workloads::TensorOp;
use std::fmt::Write as _;
use std::time::Instant;

/// Snapshot of the harness's global allocation counter: `(allocations,
/// bytes)` since process start. Installed by the `repro` binary; `None`
/// disables the steady-state section.
pub type AllocSnapshot = fn() -> (u64, u64);

/// Allocation-regression gate for `repro bench --check`: the steady-state
/// step loop must stay below this many heap allocations per simulated cycle
/// (the zero-allocation hot path measures well under 0.2 — amortized
/// collector growth only, see the committed `BENCH_sim.json`; the 0.25
/// ceiling leaves headroom for noise, not for an allocating hot path,
/// which lands at tens of allocations per cycle).
pub const MAX_ALLOCS_PER_CYCLE: f64 = 0.25;

/// Throughput-regression gate for `repro bench --check`: the per-kernel
/// simulator-throughput geomean must not regress more than this factor
/// against the committed `BENCH_sim.json` baseline. 0.90 = fail CI on a
/// kernels-geomean regression above 10% (noise on a quiet runner is a few
/// percent, a structural slowdown is tens).
pub const MIN_KERNELS_GEOMEAN: f64 = 0.90;

/// A fixed simulator-independent CPU workload (FNV-1a over a 64 KB buffer)
/// measured alongside the kernels: its throughput is stored in the report
/// so [`check_throughput_gate`] can divide out host-speed differences
/// (another machine, CPU steal, frequency drift) between a report and its
/// baseline. A *uniform* host slowdown moves kernels and calibration alike
/// and cancels; a simulator regression moves only the kernels and is
/// caught. Best-of-5 over ~20 ms samples, like the kernel sampler.
pub fn calibrate_host() -> f64 {
    let buf: Vec<u8> = (0..65_536u32).map(|i| i as u8).collect();
    let mut best = 0.0f64;
    for _ in 0..5 {
        let mut hashes = 0u64;
        let mut acc = 0u64;
        let start = Instant::now();
        while start.elapsed().as_secs_f64() < 0.02 {
            acc ^= canon_sweep::store::fnv1a64(&buf);
            hashes += 1;
        }
        std::hint::black_box(acc);
        let rate = hashes as f64 / start.elapsed().as_secs_f64();
        best = best.max(rate);
    }
    best
}

/// Evaluates the throughput-regression gate: computes the kernels geomean
/// of `report` against `baseline` (a previous `BENCH_sim.json`),
/// host-normalizes it by the calibration ratio when the baseline carries
/// one (see [`calibrate_host`]), and fails below [`MIN_KERNELS_GEOMEAN`].
///
/// # Errors
///
/// Returns a human-readable violation message (also when the baseline has
/// no overlapping kernel names to compare against).
pub fn check_throughput_gate(report: &BenchReport, baseline: &str) -> Result<(), String> {
    let ratios: Vec<f64> = report
        .kernels
        .iter()
        .filter_map(|k| {
            extract_number(baseline, &k.name, "cycles_per_sec").map(|base| k.cycles_per_sec / base)
        })
        .collect();
    let Some(raw) = geomean(&ratios) else {
        return Err("throughput gate: baseline shares no kernel names with this report".into());
    };
    // Host normalization: divide out how much faster/slower this host ran
    // the simulator-independent calibration workload than the baseline's.
    // The gate accepts the *better* of the raw and normalized readings: a
    // slower runner passes via the normalized one, a faster runner whose
    // speedup is not perfectly proportional passes via the raw one, and a
    // genuine regression on a comparable host fails both. (A regression
    // masked by a much faster runner is the irreducible blind spot of any
    // absolute cross-machine comparison; successive runs on one runner
    // class remain strictly comparable.)
    let host_ratio = extract_field(baseline, "calib_ops_per_sec", "calib_ops_per_sec")
        .filter(|&base| base > 0.0 && report.calib_ops_per_sec > 0.0)
        .map(|base| report.calib_ops_per_sec / base);
    let g = match host_ratio {
        Some(h) => (raw / h).max(raw),
        None => raw,
    };
    if g < MIN_KERNELS_GEOMEAN {
        return Err(match host_ratio {
            Some(h) => format!(
                "kernels geomean regressed to {g:.3}x of the baseline (raw {raw:.3}x, \
                 host speed {h:.3}x, {} kernels), below the {MIN_KERNELS_GEOMEAN} gate",
                ratios.len()
            ),
            None => format!(
                "kernels geomean regressed to {g:.3}x of the baseline ({} kernels \
                 compared), below the {MIN_KERNELS_GEOMEAN} gate",
                ratios.len()
            ),
        });
    }
    Ok(())
}

/// Evaluates the large-tier throughput gate: geomean of each large entry's
/// `replay_cps` (the default engine configuration — batching *and* replay
/// on) against the baseline's entry of the same `name@RxC` key,
/// host-normalized like [`check_throughput_gate`]. A baseline written
/// before the replay engine carries no `replay_cps`; its `batched_cps` was
/// the default configuration then, so the gate falls back to it — the
/// comparison stays default-config-then vs default-config-now.
///
/// Returns `Ok(None)` when there is nothing to gate — the report skipped
/// the large tier (`--reps 0`), or the baseline predates the large section
/// / shares no entry keys with it. A pre-large baseline therefore skips the
/// gate with a warning instead of breaking the schema; the caller prints
/// the distinction.
///
/// # Errors
///
/// Returns a human-readable violation message when the host-normalized
/// geomean falls below [`MIN_KERNELS_GEOMEAN`].
pub fn check_large_gate(report: &BenchReport, baseline: &str) -> Result<Option<f64>, String> {
    if report.large.is_empty() {
        return Ok(None);
    }
    let ratios: Vec<f64> = report
        .large
        .iter()
        .filter_map(|k| {
            let key = format!("{}@{}x{}", k.name, k.rows, k.cols);
            extract_number(baseline, &key, "replay_cps")
                .or_else(|| extract_number(baseline, &key, "batched_cps"))
                .map(|base| k.replay_cps / base)
        })
        .collect();
    let Some(raw) = geomean(&ratios) else {
        return Ok(None);
    };
    // Same better-of-raw-and-normalized host compensation as the scalar
    // kernels gate.
    let host_ratio = extract_field(baseline, "calib_ops_per_sec", "calib_ops_per_sec")
        .filter(|&base| base > 0.0 && report.calib_ops_per_sec > 0.0)
        .map(|base| report.calib_ops_per_sec / base);
    let g = match host_ratio {
        Some(h) => (raw / h).max(raw),
        None => raw,
    };
    if g < MIN_KERNELS_GEOMEAN {
        return Err(format!(
            "large-tier geomean regressed to {g:.3}x of the baseline (raw {raw:.3}x, \
             {} entries compared), below the {MIN_KERNELS_GEOMEAN} gate",
            ratios.len()
        ));
    }
    Ok(Some(g))
}

/// Evaluates the allocation-regression gate over a finished report.
///
/// # Errors
///
/// Returns a human-readable violation (or missing-profile) message; `repro
/// bench --check` turns it into a non-zero exit so CI fails when the
/// zero-allocation property of the step loop rots.
pub fn check_alloc_gate(report: &BenchReport) -> Result<(), String> {
    let Some(ss) = &report.steady_state else {
        return Err(
            "allocation gate needs a steady-state profile (counting allocator hook)".into(),
        );
    };
    let ratio = ss.allocs as f64 / ss.cycles.max(1) as f64;
    if ratio > MAX_ALLOCS_PER_CYCLE {
        return Err(format!(
            "steady-state step loop allocates {ratio:.4} times per simulated cycle \
             ({} allocs / {} cycles), above the {MAX_ALLOCS_PER_CYCLE} gate",
            ss.allocs, ss.cycles
        ));
    }
    Ok(())
}

/// Minimum accumulated sim wall time per kernel sample (seconds).
const MIN_SAMPLE_SECS: f64 = 0.08;
/// Independent samples per kernel; the best (highest-throughput) sample is
/// reported, filtering transient host interference.
const SAMPLES: usize = 3;
/// Repetition cap per sample.
const MAX_REPS: usize = 200;

/// One kernel's simulator-throughput sample.
#[derive(Debug, Clone)]
pub struct KernelBench {
    /// Fig 12 column label.
    pub name: String,
    /// Simulated cycles of one run.
    pub sim_cycles: u64,
    /// Repetitions measured.
    pub reps: usize,
    /// Total fabric wall time across reps (ms).
    pub wall_ms: f64,
    /// Simulated cycles per host second.
    pub cycles_per_sec: f64,
}

/// Allocation + scheduler profile of one fabric run.
#[derive(Debug, Clone)]
pub struct SteadyState {
    /// Cycles of the measured run.
    pub cycles: u64,
    /// Heap allocations during [`Fabric::run`].
    pub allocs: u64,
    /// Bytes allocated during the run.
    pub bytes: u64,
    /// PE count of the measured fabric (denominator of the active ratio).
    pub pes: usize,
    /// PE-cycles the active-set sweep actually visited.
    pub active_pe_cycles: u64,
    /// Of those, PE-cycles retired by the column-batch fast path.
    pub batched_pe_cycles: u64,
    /// Orchestrator FSM activations (includes settled parked windows).
    pub orch_steps: u64,
    /// Orchestrator polls the event engine skipped (parked pure waits).
    pub orch_polls_skipped: u64,
    /// Row wake events raised (link/timer/slot).
    pub wake_events: u64,
    /// Cycles the steady-state replay engine fast-forwarded arithmetically.
    pub replayed_cycles: u64,
    /// Captured steady-state stretches the replay engine committed.
    pub replay_stretches: u64,
}

impl SteadyState {
    /// Share of the swept PE work the column-batch fast path carried
    /// (`batched_pe_cycles / active_pe_cycles`).
    pub fn batch_hit_rate(&self) -> f64 {
        self.batched_pe_cycles as f64 / self.active_pe_cycles.max(1) as f64
    }

    /// Share of the run's cycles the replay engine fast-forwarded
    /// (`replayed_cycles / cycles`).
    pub fn replay_hit_rate(&self) -> f64 {
        self.replayed_cycles as f64 / self.cycles.max(1) as f64
    }
}

/// One large-tier kernel's interleaved scalar / batch-on / replay-on
/// measurement at one fabric geometry.
#[derive(Debug, Clone)]
pub struct LargeKernelBench {
    /// Kernel label (without the geometry suffix; JSON keys entries as
    /// `name@RxC`).
    pub name: String,
    /// Fabric rows of this measurement.
    pub rows: usize,
    /// Fabric columns of this measurement.
    pub cols: usize,
    /// Simulated cycles of one run (identical across all three engine
    /// configurations — asserted every repetition).
    pub sim_cycles: u64,
    /// Interleaved A/B/C triples measured.
    pub reps: usize,
    /// Simulated cycles per host second with both fast paths force-disabled.
    pub scalar_cps: f64,
    /// Simulated cycles per host second with the batch path on and the
    /// replay engine off — isolates the column-batch contribution.
    pub batched_cps: f64,
    /// Simulated cycles per host second with batching *and* replay on (the
    /// default engine configuration; this is the number the throughput
    /// gate compares).
    pub replay_cps: f64,
    /// Share of swept PE-cycles the batch path carried (batching on,
    /// replay off — under replay the deferred share is accounted, not
    /// swept).
    pub batch_hit_rate: f64,
    /// Share of the run's cycles the replay engine fast-forwarded
    /// (`replayed_cycles / cycles`, replay on).
    pub replay_hit_rate: f64,
    /// Captured steady-state stretches the replay engine committed
    /// (periods detected, replay on).
    pub replay_stretches: u64,
}

impl LargeKernelBench {
    /// Batch-on over batch-off throughput from the interleaved runs.
    pub fn batch_speedup(&self) -> f64 {
        self.batched_cps / self.scalar_cps.max(f64::MIN_POSITIVE)
    }

    /// Replay-on over replay-off (both batched) throughput from the
    /// interleaved runs — the macro-cycle replay engine's contribution on
    /// top of column batching.
    pub fn replay_speedup(&self) -> f64 {
        self.replay_cps / self.batched_cps.max(f64::MIN_POSITIVE)
    }

    /// Mean captured stretch length in cycles (0 when replay never
    /// engaged).
    pub fn replay_period(&self) -> f64 {
        if self.replay_stretches == 0 {
            return 0.0;
        }
        self.replay_hit_rate * self.sim_cycles as f64 / self.replay_stretches as f64
    }
}

/// Wall time of one figure harness entry point.
#[derive(Debug, Clone)]
pub struct FigureBench {
    /// Figure target name.
    pub name: &'static str,
    /// End-to-end wall time (ms).
    pub wall_ms: f64,
}

/// Cold standard-sweep throughput.
#[derive(Debug, Clone)]
pub struct SweepBench {
    /// Grid cells.
    pub cells: usize,
    /// Cells executed (non-cached, supported).
    pub executed: usize,
    /// Simulated cycles across executed cells.
    pub sim_cycles: u64,
    /// Execution-phase wall time (ms).
    pub wall_ms: f64,
    /// Simulated cycles per host second across all workers.
    pub cycles_per_sec: f64,
}

/// The complete `repro bench` measurement.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Problem-size preset the measurements ran at.
    pub scale: Scale,
    /// Worker threads used for the sweep sample.
    pub jobs: usize,
    /// Host-calibration throughput ([`calibrate_host`]) measured in the
    /// same window as the kernels; the throughput gate divides host-speed
    /// differences out with it.
    pub calib_ops_per_sec: f64,
    /// Per-kernel simulator throughput.
    pub kernels: Vec<KernelBench>,
    /// Large-tier measurements (64×64 / 128×64 fabrics, deep-K operands)
    /// with interleaved batch-off/batch-on A/B. Empty when the large tier
    /// was skipped (`--reps 0`).
    pub large: Vec<LargeKernelBench>,
    /// Step-loop allocation profile (`None` without an allocator hook).
    pub steady_state: Option<SteadyState>,
    /// Figure harness wall times.
    pub figures: Vec<FigureBench>,
    /// Cold-sweep throughput.
    pub sweep: SweepBench,
}

/// One sample: repeat the kernel until `min_secs` of fabric wall time
/// accumulates, returning `(sim cycles of one run, reps, total wall ns)`.
fn sample_one(
    backend: &CanonBackend,
    op: &canon_workloads::TensorOp,
    seed: u64,
    min_secs: f64,
) -> (u64, usize, u64) {
    let first: RunReport = backend.run_report(op, seed).expect("kernel maps");
    let mut total_wall_ns = first.wall_ns;
    let mut reps = 1;
    while reps < MAX_REPS && (total_wall_ns as f64) * 1e-9 < min_secs {
        let r = backend.run_report(op, seed).expect("kernel maps");
        total_wall_ns += r.wall_ns;
        reps += 1;
    }
    (first.cycles, reps, total_wall_ns)
}

fn bench_one(
    backend: &CanonBackend,
    name: String,
    op: &canon_workloads::TensorOp,
    seed: u64,
    min_secs: f64,
) -> KernelBench {
    // Best of `SAMPLES` independent samples: transient host interference
    // can only slow a sample down, so the fastest is the least-perturbed.
    let mut best: Option<KernelBench> = None;
    for _ in 0..SAMPLES {
        let (sim_cycles, reps, wall_ns) = sample_one(backend, op, seed, min_secs);
        let sample = KernelBench {
            name: name.clone(),
            sim_cycles,
            reps,
            wall_ms: wall_ns as f64 * 1e-6,
            cycles_per_sec: sim_cycles as f64 * reps as f64 / (wall_ns.max(1) as f64 * 1e-9),
        };
        if best
            .as_ref()
            .is_none_or(|b| sample.cycles_per_sec > b.cycles_per_sec)
        {
            best = Some(sample);
        }
    }
    best.expect("SAMPLES > 0")
}

fn bench_kernels(scale: Scale) -> Vec<KernelBench> {
    let backend = CanonBackend::default();
    tensor_ops(scale)
        .into_iter()
        .map(|(name, op, seed)| bench_one(&backend, name, &op, seed, MIN_SAMPLE_SECS))
        .collect()
}

/// The large tier's kernel list: deep-K shapes where the per-output MAC
/// burst (`K / rows` dmem words per column visit) is long enough for the
/// column-batch fast path to engage — the regime the batching optimization
/// targets — while one run stays under about a second of host time at
/// 64×64. Every `K` is a multiple of 128 and every `N` a multiple of
/// `cols·LANES`, so the shapes map at both large geometries.
fn large_tensor_ops() -> Vec<(&'static str, TensorOp, u64)> {
    vec![
        (
            "GEMM",
            TensorOp::Gemm {
                m: 8,
                k: 16_384,
                n: 256,
            },
            201,
        ),
        (
            "SpMM-S1",
            TensorOp::Spmm {
                m: 32,
                k: 4096,
                n: 256,
                sparsity: 0.15,
            },
            202,
        ),
        (
            "SpMM-S3",
            TensorOp::Spmm {
                m: 32,
                k: 4096,
                n: 256,
                sparsity: 0.80,
            },
            203,
        ),
        (
            "SpMM-2:4",
            TensorOp::SpmmNm {
                m: 32,
                k: 2048,
                n: 256,
                n_of: 2,
                m_of: 4,
            },
            204,
        ),
        // The replay showcase: K deep enough that the per-output MAC burst
        // fills an 8192-word dmem band at 64 rows (the bench raises
        // `dmem_words` to fit — see `bench_large`), so one uniform stretch
        // runs ~8192 cycles against the ~3·cols-cycle capture warm-up — the
        // regime where the macro-cycle replay engine fast-forwards ~95% of
        // the run. This is also the one kernel whose replay-off runs take
        // a few seconds of host time; every other shape stays under about
        // a second at 64×64.
        (
            "GEMM-deep",
            TensorOp::Gemm {
                m: 2,
                k: 524_288,
                n: 256,
            },
            205,
        ),
    ]
}

/// Measures the large tier: every deep-K kernel at every large geometry,
/// `reps` interleaved scalar / batch-on / replay-on triples per cell.
/// Interleaving (scalar, batch, replay, scalar, …) exposes all three
/// engine configurations to the same host drift, so the per-kernel batch
/// and replay speedups are honest A/Bs rather than separated timing
/// windows. Operands are materialized once per kernel and reused across
/// reps (the scalar-tier sampler's `run_report` re-generates them every
/// call, which at these sizes would dominate the measurement).
fn bench_large(reps: usize) -> Vec<LargeKernelBench> {
    let mut out = Vec::new();
    if reps == 0 {
        return out;
    }
    for (rows, cols) in large_geometries() {
        // Default engine configuration: batching and replay both on.
        let cfg_replay = CanonConfig::default().with_geometry(rows, cols);
        let cfg_batch = CanonConfig {
            replay: false,
            ..cfg_replay.clone()
        };
        let cfg_scalar = CanonConfig {
            batching: false,
            ..cfg_batch.clone()
        };
        for (name, op, seed) in large_tensor_ops() {
            // Deep-K shapes need a dmem band of `K / rows` words per PE;
            // size the data memory per kernel (never below the default) so
            // the band depth is a property of the kernel, not a global cap
            // inflating every allocation.
            let band = match &op {
                TensorOp::Gemm { k, .. }
                | TensorOp::Spmm { k, .. }
                | TensorOp::SpmmNm { k, .. } => k / rows,
                // SDDMM shapes are not part of the large tier; their band
                // needs are covered by the default data-memory size.
                _ => 0,
            };
            let dmem_words = cfg_replay.dmem_words.max(band);
            let cfg_replay = CanonConfig {
                dmem_words,
                ..cfg_replay.clone()
            };
            let cfg_batch = CanonConfig {
                dmem_words,
                ..cfg_batch.clone()
            };
            let cfg_scalar = CanonConfig {
                dmem_words,
                ..cfg_scalar.clone()
            };
            let input = kernel_input(&op, seed);
            let mut wall_scalar = 0u64;
            let mut wall_batch = 0u64;
            let mut wall_replay = 0u64;
            let mut sim_cycles = 0u64;
            let mut batch_hit = 0.0f64;
            let mut replay_hit = 0.0f64;
            let mut stretches = 0u64;
            for _ in 0..reps {
                let scalar = run_kernel(&cfg_scalar, &input)
                    .expect("large kernel maps")
                    .report;
                let batch = run_kernel(&cfg_batch, &input)
                    .expect("large kernel maps")
                    .report;
                let replay = run_kernel(&cfg_replay, &input)
                    .expect("large kernel maps")
                    .report;
                assert_eq!(
                    scalar.cycles, batch.cycles,
                    "batch fast path must be architecturally invisible ({name} {rows}x{cols})"
                );
                assert_eq!(
                    batch.cycles, replay.cycles,
                    "replay engine must be architecturally invisible ({name} {rows}x{cols})"
                );
                wall_scalar += scalar.wall_ns;
                wall_batch += batch.wall_ns;
                wall_replay += replay.wall_ns;
                sim_cycles = replay.cycles;
                batch_hit = batch.stats.batched_pe_cycles as f64
                    / batch.stats.active_pe_cycles.max(1) as f64;
                replay_hit = replay.stats.replayed_cycles as f64 / replay.cycles.max(1) as f64;
                stretches = replay.stats.replay_stretches;
            }
            let total_cycles = sim_cycles as f64 * reps as f64;
            out.push(LargeKernelBench {
                name: name.to_string(),
                rows,
                cols,
                sim_cycles,
                reps,
                scalar_cps: total_cycles / (wall_scalar.max(1) as f64 * 1e-9),
                batched_cps: total_cycles / (wall_batch.max(1) as f64 * 1e-9),
                replay_cps: total_cycles / (wall_replay.max(1) as f64 * 1e-9),
                batch_hit_rate: batch_hit,
                replay_hit_rate: replay_hit,
                replay_stretches: stretches,
            });
        }
    }
    out
}

/// The fixed fabric-level SpMM used for allocation profiling **and** pinned
/// by `tests/cycle_invariance.rs` (`fabric_spmm_collector_sequence_golden`):
/// skewed 24×32 stream at seed 7, depth-16 window, one column tile on the
/// default 8×8 fabric. Both consumers build it through this one
/// constructor, so the allocation claim and the golden collector sequence
/// always describe the same scenario.
pub fn golden_spmm_fabric() -> Fabric {
    let cfg = CanonConfig::default();
    let mut rng = gen::seeded_rng(7);
    let a = gen::skewed_sparse(24, 32, 0.55, 1.5, &mut rng);
    let b = Dense::random(32, 32, &mut rng);
    let streams = build_row_streams(&a, cfg.rows).expect("stream split");
    let mut fabric = Fabric::new(&cfg, false);
    preload_b_tile(&mut fabric, &b, 32 / cfg.rows, 0).expect("tile fits");
    for (r, stream) in streams.into_iter().enumerate() {
        fabric.set_meta_stream(r, stream);
        fabric.set_program(r, SpmmFsm::new(16, 24));
    }
    fabric
}

/// The pinned observability scenario behind `repro trace` / `repro profile`:
/// the golden SpMM band (same stream, seed, and tile as
/// [`golden_spmm_fabric`]) but on a depth-1 psum window with shallow link
/// FIFOs, so the captured trace exercises credit back-pressure and the
/// exported stall spans are non-trivial.
pub fn golden_trace_fabric() -> Fabric {
    let cfg = CanonConfig {
        link_fifo_depth: 4,
        ..CanonConfig::default()
    };
    let mut rng = gen::seeded_rng(7);
    let a = gen::skewed_sparse(24, 32, 0.55, 1.5, &mut rng);
    let b = Dense::random(32, 32, &mut rng);
    let streams = build_row_streams(&a, cfg.rows).expect("stream split");
    let mut fabric = Fabric::new(&cfg, false);
    preload_b_tile(&mut fabric, &b, 32 / cfg.rows, 0).expect("tile fits");
    for (r, stream) in streams.into_iter().enumerate() {
        fabric.set_meta_stream(r, stream);
        fabric.set_program(r, SpmmFsm::new(1, 24));
    }
    fabric
}

fn bench_steady_state(alloc: AllocSnapshot) -> SteadyState {
    // One throwaway run warms allocator pools and code paths.
    let mut warm = golden_spmm_fabric();
    warm.run().expect("spmm runs");
    let mut fabric = golden_spmm_fabric();
    let (a0, b0) = alloc();
    let report = fabric.run().expect("spmm runs");
    let (a1, b1) = alloc();
    SteadyState {
        cycles: report.cycles,
        allocs: a1 - a0,
        bytes: b1 - b0,
        pes: report.pes,
        active_pe_cycles: report.stats.active_pe_cycles,
        batched_pe_cycles: report.stats.batched_pe_cycles,
        orch_steps: report.stats.orch_steps,
        orch_polls_skipped: report.stats.orch_polls_skipped,
        wake_events: report.stats.wake_events,
        replayed_cycles: report.stats.replayed_cycles,
        replay_stretches: report.stats.replay_stretches,
    }
}

fn bench_figures(scale: Scale) -> Vec<FigureBench> {
    let mut out = Vec::new();
    let mut run = |name: &'static str, f: &dyn Fn() -> String| {
        // Best of two passes (see the kernel sampler's rationale).
        let mut best = f64::INFINITY;
        for _ in 0..2 {
            let t = Instant::now();
            let text = f();
            assert!(!text.is_empty());
            best = best.min(t.elapsed().as_secs_f64() * 1e3);
        }
        out.push(FigureBench {
            name,
            wall_ms: best,
        });
    };
    run("fig11", &|| figures::fig11(scale));
    run("fig12+13", &|| figures::fig1213(scale));
    run("fig14", &|| figures::fig14(scale));
    out
}

fn bench_sweep(scale: Scale, jobs: usize) -> SweepBench {
    let mut builder = GridBuilder::new()
        .scales(&[match scale {
            Scale::Full | Scale::Large => 1,
            Scale::Smoke => 4,
        }])
        .geometries(&[(8, 8)]);
    for w in standard_workloads() {
        builder = builder.workload(&w.name, w.template);
    }
    let grid = builder.build();
    // Cold in-memory store each sample; best-of-3 for noise immunity.
    let mut best: Option<SweepBench> = None;
    for _ in 0..3 {
        let mut store = ResultStore::in_memory();
        let outcome = run_sweep(
            &grid,
            &mut store,
            &SweepOptions {
                jobs,
                ..Default::default()
            },
        )
        .expect("in-memory sweep cannot fail on I/O");
        let s = outcome.stats;
        let sample = SweepBench {
            cells: s.total,
            executed: s.executed,
            sim_cycles: s.sim_cycles,
            wall_ms: s.wall_secs * 1e3,
            cycles_per_sec: s.cycles_per_sec(),
        };
        if best
            .as_ref()
            .is_none_or(|b| sample.cycles_per_sec > b.cycles_per_sec)
        {
            best = Some(sample);
        }
    }
    best.expect("at least one sweep sample")
}

/// Runs the full measurement suite. `large_reps` is the number of
/// interleaved batch-off/batch-on pairs per large-tier cell (0 skips the
/// large tier entirely).
pub fn run_bench(
    scale: Scale,
    jobs: usize,
    alloc: Option<AllocSnapshot>,
    large_reps: usize,
) -> BenchReport {
    BenchReport {
        scale,
        jobs,
        calib_ops_per_sec: calibrate_host(),
        kernels: bench_kernels(scale),
        large: bench_large(large_reps),
        steady_state: alloc.map(bench_steady_state),
        figures: bench_figures(scale),
        sweep: bench_sweep(scale, jobs),
    }
}

/// Extracts `"field":<number>` from the first line matching `line_pat` —
/// the line-oriented parse the baseline embedding relies on
/// ([`render_json`] writes one object per line).
fn extract_field(report: &str, line_pat: &str, field: &str) -> Option<f64> {
    let field_pat = format!("\"{field}\":");
    report.lines().find(|l| l.contains(line_pat)).and_then(|l| {
        let rest = l[l.find(&field_pat)? + field_pat.len()..].trim_start();
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')))
            .unwrap_or(rest.len());
        rest[..end].parse().ok()
    })
}

/// `extract_field` keyed by a `"name"` entry (kernels, figures).
fn extract_number(report: &str, name: &str, field: &str) -> Option<f64> {
    extract_field(report, &format!("\"name\":\"{name}\""), field)
}

/// `extract_field` keyed by a top-level section, e.g.
/// `extract_section_number(r, "sweep", "cycles_per_sec")`.
fn extract_section_number(report: &str, section: &str, field: &str) -> Option<f64> {
    extract_field(report, &format!("\"{section}\":"), field)
}

/// Drops a previous report's own embedded `"baseline"` subtree before
/// re-embedding it: the committed `BENCH_sim.json` then always carries
/// exactly one before/after pair (the new measurement plus its immediate
/// predecessor) instead of recursively nesting every report in the chain.
/// The `"baseline"` key is the last section `render_json` emits, so
/// truncating there and re-closing the object preserves every measurement
/// line the extraction helpers read.
fn strip_nested_baseline(baseline: &str) -> String {
    match baseline.find("\n  \"baseline\":") {
        Some(pos) => {
            let mut out = baseline[..pos].trim_end().trim_end_matches(',').to_string();
            out.push_str("\n}\n");
            out
        }
        None => baseline.to_string(),
    }
}

fn geomean(ratios: &[f64]) -> Option<f64> {
    if ratios.is_empty() {
        return None;
    }
    Some((ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp())
}

/// Renders the report as JSON (one object per line inside arrays, so the
/// file stays greppable and the baseline extraction stays line-oriented).
/// `baseline` is a previous report's JSON; when given, speedups are
/// computed against it and it is embedded under `"baseline"`.
pub fn render_json(report: &BenchReport, baseline: Option<&str>) -> String {
    let mut s = String::new();
    let scale = match report.scale {
        Scale::Full => "full",
        Scale::Smoke => "smoke",
        Scale::Large => "large",
    };
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"schema\": 1,");
    let _ = writeln!(s, "  \"scale\": \"{scale}\",");
    let _ = writeln!(s, "  \"jobs\": {},", report.jobs);
    let _ = writeln!(
        s,
        "  \"calib_ops_per_sec\": {:.0},",
        report.calib_ops_per_sec
    );
    let _ = writeln!(s, "  \"kernels\": [");
    let mut kernel_speedups = Vec::new();
    for (i, k) in report.kernels.iter().enumerate() {
        let speedup = baseline
            .and_then(|b| extract_number(b, &k.name, "cycles_per_sec"))
            .map(|base| k.cycles_per_sec / base);
        if let Some(r) = speedup {
            kernel_speedups.push(r);
        }
        let comma = if i + 1 < report.kernels.len() {
            ","
        } else {
            ""
        };
        let _ = write!(
            s,
            "    {{\"name\":\"{}\",\"sim_cycles\":{},\"reps\":{},\"wall_ms\":{:.3},\"cycles_per_sec\":{:.0}",
            k.name, k.sim_cycles, k.reps, k.wall_ms, k.cycles_per_sec
        );
        match speedup {
            Some(r) => {
                let _ = writeln!(s, ",\"speedup_vs_baseline\":{r:.3}}}{comma}");
            }
            None => {
                let _ = writeln!(s, "}}{comma}");
            }
        }
    }
    let _ = writeln!(s, "  ],");
    let mut large_speedups = Vec::new();
    let _ = writeln!(s, "  \"large\": [");
    for (i, k) in report.large.iter().enumerate() {
        let key = format!("{}@{}x{}", k.name, k.rows, k.cols);
        // Default-config tracking: this report's replay_cps against the
        // baseline's (or its batched_cps when the baseline predates the
        // replay engine and batching alone was the default).
        let speedup = baseline
            .and_then(|b| {
                extract_number(b, &key, "replay_cps")
                    .or_else(|| extract_number(b, &key, "batched_cps"))
            })
            .map(|base| k.replay_cps / base);
        if let Some(r) = speedup {
            large_speedups.push(r);
        }
        let comma = if i + 1 < report.large.len() { "," } else { "" };
        let _ = write!(
            s,
            "    {{\"name\":\"{key}\",\"rows\":{},\"cols\":{},\"sim_cycles\":{},\"reps\":{},\"scalar_cps\":{:.0},\"batched_cps\":{:.0},\"batch_speedup\":{:.3},\"batch_hit_rate\":{:.4},\"replay_cps\":{:.0},\"replay_speedup\":{:.3},\"replay_hit_rate\":{:.4},\"replay_stretches\":{},\"replay_period\":{:.1}",
            k.rows,
            k.cols,
            k.sim_cycles,
            k.reps,
            k.scalar_cps,
            k.batched_cps,
            k.batch_speedup(),
            k.batch_hit_rate,
            k.replay_cps,
            k.replay_speedup(),
            k.replay_hit_rate,
            k.replay_stretches,
            k.replay_period()
        );
        match speedup {
            Some(r) => {
                let _ = writeln!(s, ",\"speedup_vs_baseline\":{r:.3}}}{comma}");
            }
            None => {
                let _ = writeln!(s, "}}{comma}");
            }
        }
    }
    let _ = writeln!(s, "  ],");
    // The tier's headline numbers: per-geometry geomeans of the
    // interleaved batch-on/off and replay-on/off speedups (self-contained —
    // need no baseline).
    if !report.large.is_empty() {
        let mut geoms: Vec<(usize, usize)> = Vec::new();
        for k in &report.large {
            if !geoms.contains(&(k.rows, k.cols)) {
                geoms.push((k.rows, k.cols));
            }
        }
        let per_geom = |f: fn(&LargeKernelBench) -> f64| -> Vec<String> {
            geoms
                .iter()
                .map(|&(r, c)| {
                    let sp: Vec<f64> = report
                        .large
                        .iter()
                        .filter(|k| (k.rows, k.cols) == (r, c))
                        .map(f)
                        .collect();
                    format!("\"geomean_{r}x{c}\":{:.3}", geomean(&sp).unwrap_or(1.0))
                })
                .collect()
        };
        let _ = writeln!(
            s,
            "  \"large_batch\": {{{}}},",
            per_geom(LargeKernelBench::batch_speedup).join(",")
        );
        let _ = writeln!(
            s,
            "  \"large_replay\": {{{}}},",
            per_geom(LargeKernelBench::replay_speedup).join(",")
        );
    }
    if let Some(ss) = &report.steady_state {
        let _ = writeln!(
            s,
            "  \"steady_state\": {{\"name\":\"spmm-fabric\",\"cycles\":{},\"allocs\":{},\"bytes\":{},\"allocs_per_cycle\":{:.4},\"active_pe_ratio\":{:.4},\"batched_pe_cycles\":{},\"batch_hit_rate\":{:.4},\"orch_steps\":{},\"orch_polls_skipped\":{},\"wake_events\":{},\"replayed_cycles\":{},\"replay_stretches\":{},\"replay_hit_rate\":{:.4}}},",
            ss.cycles,
            ss.allocs,
            ss.bytes,
            ss.allocs as f64 / ss.cycles.max(1) as f64,
            ss.active_pe_cycles as f64 / (ss.cycles.max(1) * ss.pes.max(1) as u64) as f64,
            ss.batched_pe_cycles,
            ss.batch_hit_rate(),
            ss.orch_steps,
            ss.orch_polls_skipped,
            ss.wake_events,
            ss.replayed_cycles,
            ss.replay_stretches,
            ss.replay_hit_rate()
        );
    }
    let _ = writeln!(s, "  \"figures\": [");
    for (i, f) in report.figures.iter().enumerate() {
        let comma = if i + 1 < report.figures.len() {
            ","
        } else {
            ""
        };
        let speedup = baseline
            .and_then(|b| extract_number(b, f.name, "wall_ms"))
            .map(|base| base / f.wall_ms);
        let _ = write!(
            s,
            "    {{\"name\":\"{}\",\"wall_ms\":{:.3}",
            f.name, f.wall_ms
        );
        match speedup {
            Some(r) => {
                let _ = writeln!(s, ",\"speedup_vs_baseline\":{r:.3}}}{comma}");
            }
            None => {
                let _ = writeln!(s, "}}{comma}");
            }
        }
    }
    let _ = writeln!(s, "  ],");
    let sweep_speedup = baseline
        .and_then(|b| extract_section_number(b, "sweep", "cycles_per_sec"))
        .map(|base| report.sweep.cycles_per_sec / base);
    let _ = write!(
        s,
        "  \"sweep\": {{\"cells\":{},\"executed\":{},\"sim_cycles\":{},\"wall_ms\":{:.3},\"cycles_per_sec\":{:.0}",
        report.sweep.cells,
        report.sweep.executed,
        report.sweep.sim_cycles,
        report.sweep.wall_ms,
        report.sweep.cycles_per_sec
    );
    match sweep_speedup {
        Some(r) => {
            let _ = writeln!(s, ",\"speedup_vs_baseline\":{r:.3}}},");
        }
        None => {
            let _ = writeln!(s, "}},");
        }
    }
    match baseline {
        Some(b) => {
            // Emit whatever summary ratios are computable (a baseline with
            // mismatched kernel names still embeds verbatim below).
            let mut parts = Vec::new();
            if let Some(g) = geomean(&kernel_speedups) {
                parts.push(format!("\"kernels_geomean\":{g:.3}"));
            }
            if let Some(g) = geomean(&large_speedups) {
                parts.push(format!("\"large_geomean\":{g:.3}"));
            }
            if let Some(r) = sweep_speedup {
                parts.push(format!("\"sweep\":{r:.3}"));
            }
            if !parts.is_empty() {
                let _ = writeln!(s, "  \"speedup\": {{{}}},", parts.join(","));
            }
            let _ = writeln!(s, "  \"baseline\":");
            for line in strip_nested_baseline(b).trim_end().lines() {
                let _ = writeln!(s, "  {line}");
            }
        }
        None => {
            let _ = writeln!(s, "  \"baseline\": null");
        }
    }
    let _ = writeln!(s, "}}");
    s
}

/// Human-readable summary printed alongside the JSON file.
pub fn render_text(report: &BenchReport) -> String {
    let mut s = String::new();
    let tier = match report.scale {
        Scale::Full => "full",
        Scale::Smoke => "smoke",
        Scale::Large => "large",
    };
    let _ = writeln!(s, "== repro bench: simulator throughput ({tier} tier) ==");
    let _ = writeln!(
        s,
        "{:<14} {:>11} {:>6} {:>10} {:>16}",
        "kernel", "sim cycles", "reps", "wall ms", "cycles/sec"
    );
    for k in &report.kernels {
        let _ = writeln!(
            s,
            "{:<14} {:>11} {:>6} {:>10.2} {:>16.0}",
            k.name, k.sim_cycles, k.reps, k.wall_ms, k.cycles_per_sec
        );
    }
    if !report.large.is_empty() {
        let _ = writeln!(
            s,
            "== large tier: interleaved scalar/batch/replay A/B ({} triples per cell) ==",
            report.large[0].reps
        );
        let _ = writeln!(
            s,
            "{:<10} {:>8} {:>11} {:>13} {:>13} {:>13} {:>8} {:>8} {:>5} {:>7}",
            "kernel",
            "geometry",
            "sim cycles",
            "scalar c/s",
            "batched c/s",
            "replay c/s",
            "replay",
            "ff rate",
            "str.",
            "period"
        );
        for k in &report.large {
            let _ = writeln!(
                s,
                "{:<10} {:>8} {:>11} {:>13.0} {:>13.0} {:>13.0} {:>7.2}x {:>7.1}% {:>5} {:>7.0}",
                k.name,
                format!("{}x{}", k.rows, k.cols),
                k.sim_cycles,
                k.scalar_cps,
                k.batched_cps,
                k.replay_cps,
                k.replay_speedup(),
                k.replay_hit_rate * 100.0,
                k.replay_stretches,
                k.replay_period()
            );
        }
        let mut geoms: Vec<(usize, usize)> = Vec::new();
        for k in &report.large {
            if !geoms.contains(&(k.rows, k.cols)) {
                geoms.push((k.rows, k.cols));
            }
        }
        for (r, c) in geoms {
            let take = |f: fn(&LargeKernelBench) -> f64| -> Vec<f64> {
                report
                    .large
                    .iter()
                    .filter(|k| (k.rows, k.cols) == (r, c))
                    .map(f)
                    .collect()
            };
            let batch = take(LargeKernelBench::batch_speedup);
            let replay = take(LargeKernelBench::replay_speedup);
            let _ = writeln!(
                s,
                "large {r}x{c}: batch on/off geomean {:.3}x, replay on/off geomean {:.3}x over {} kernels",
                geomean(&batch).unwrap_or(1.0),
                geomean(&replay).unwrap_or(1.0),
                batch.len()
            );
        }
    }
    if let Some(ss) = &report.steady_state {
        let _ = writeln!(
            s,
            "steady-state step loop: {} allocs / {} cycles = {:.4} allocs/cycle ({} bytes)",
            ss.allocs,
            ss.cycles,
            ss.allocs as f64 / ss.cycles.max(1) as f64,
            ss.bytes
        );
        // Scheduler activity: how much of the polled work the event-driven
        // engine actually performs.
        let _ = writeln!(
            s,
            "scheduler: active PE sweeps {:.1}% of PE-cycles; {} of {} orch row-cycles settled without a poll ({:.1}%); {} wake events",
            ss.active_pe_cycles as f64 / (ss.cycles.max(1) * ss.pes.max(1) as u64) as f64 * 100.0,
            ss.orch_polls_skipped,
            ss.orch_steps,
            ss.orch_polls_skipped as f64 / ss.orch_steps.max(1) as f64 * 100.0,
            ss.wake_events
        );
        let _ = writeln!(
            s,
            "batch fast path: {} of {} swept PE-cycles ({:.1}% hit rate)",
            ss.batched_pe_cycles,
            ss.active_pe_cycles,
            ss.batch_hit_rate() * 100.0
        );
        let _ = writeln!(
            s,
            "replay engine: {} of {} cycles fast-forwarded ({:.1}%) across {} stretches",
            ss.replayed_cycles,
            ss.cycles,
            ss.replay_hit_rate() * 100.0,
            ss.replay_stretches
        );
    }
    for f in &report.figures {
        let _ = writeln!(s, "figure {:<10} {:>10.1} ms", f.name, f.wall_ms);
    }
    let _ = writeln!(
        s,
        "sweep: {} cells ({} executed), {:.1} ms, {:.0} cycles/sec",
        report.sweep.cells,
        report.sweep.executed,
        report.sweep.wall_ms,
        report.sweep.cycles_per_sec
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> BenchReport {
        BenchReport {
            scale: Scale::Smoke,
            jobs: 2,
            calib_ops_per_sec: 1_000_000.0,
            kernels: vec![KernelBench {
                name: "GEMM".into(),
                sim_cycles: 1000,
                reps: 3,
                wall_ms: 1.5,
                cycles_per_sec: 2_000_000.0,
            }],
            large: vec![LargeKernelBench {
                name: "GEMM".into(),
                rows: 64,
                cols: 64,
                sim_cycles: 2373,
                reps: 3,
                scalar_cps: 4_000.0,
                batched_cps: 5_000.0,
                replay_cps: 30_000.0,
                batch_hit_rate: 0.54,
                replay_hit_rate: 0.60,
                replay_stretches: 2,
            }],
            steady_state: Some(SteadyState {
                cycles: 164,
                allocs: 12,
                bytes: 4096,
                pes: 64,
                active_pe_cycles: 4100,
                batched_pe_cycles: 1025,
                orch_steps: 1000,
                orch_polls_skipped: 250,
                wake_events: 40,
                replayed_cycles: 0,
                replay_stretches: 0,
            }),
            figures: vec![FigureBench {
                name: "fig12+13",
                wall_ms: 42.0,
            }],
            sweep: SweepBench {
                cells: 70,
                executed: 61,
                sim_cycles: 123456,
                wall_ms: 10.0,
                cycles_per_sec: 12_345_600.0,
            },
        }
    }

    #[test]
    fn json_roundtrips_through_the_line_extractors() {
        let json = render_json(&tiny_report(), None);
        assert_eq!(
            extract_number(&json, "GEMM", "cycles_per_sec"),
            Some(2_000_000.0)
        );
        assert_eq!(extract_number(&json, "fig12+13", "wall_ms"), Some(42.0));
        assert_eq!(
            extract_section_number(&json, "sweep", "cycles_per_sec"),
            Some(12_345_600.0)
        );
        assert!(json.contains("\"allocs_per_cycle\":0.0732"));
        assert!(json.contains("\"baseline\": null"));
    }

    #[test]
    fn baseline_embedding_computes_speedups() {
        let base = render_json(&tiny_report(), None);
        let mut faster = tiny_report();
        faster.kernels[0].cycles_per_sec *= 2.0;
        faster.sweep.cycles_per_sec *= 4.0;
        let json = render_json(&faster, Some(&base));
        assert!(json.contains("\"speedup_vs_baseline\":2.000"));
        assert!(json.contains("\"kernels_geomean\":2.000"));
        assert!(json.contains("\"sweep\":4.000"));
        // The baseline is embedded (indented, its own nested baseline
        // stripped), still one object per line, so a future bench can
        // extract from this file too.
        assert!(json.contains("\"baseline\":"));
        assert!(extract_number(&json, "GEMM", "speedup_vs_baseline").is_some());
    }

    #[test]
    fn mismatched_baseline_is_still_embedded() {
        // A baseline whose kernel names don't line up (renamed column, old
        // suite) computes no kernel geomean, but the before/after record
        // must still carry the baseline verbatim.
        let mut renamed = tiny_report();
        renamed.kernels[0].name = "GEMM-old".into();
        let base = render_json(&renamed, None);
        let json = render_json(&tiny_report(), Some(&base));
        assert!(!json.contains("kernels_geomean"));
        assert!(json.contains("\"sweep\":1.000"), "{json}");
        // The top-level baseline is the embedded object, not `null`.
        assert!(json.contains("\n  \"baseline\":\n"), "{json}");
        assert!(extract_number(&json, "GEMM-old", "cycles_per_sec").is_some());
    }

    #[test]
    fn embedding_strips_the_nested_baseline() {
        // Chain three reports: C embeds B embeds A. C must carry B's
        // measurement lines (its immediate predecessor) but not A's —
        // the committed artifact stays two reports deep forever.
        let a = render_json(&tiny_report(), None);
        let mut b_report = tiny_report();
        b_report.kernels[0].cycles_per_sec = 3_000_000.0;
        let b = render_json(&b_report, Some(&a));
        assert_eq!(b.matches("\"kernels\": [").count(), 2, "A embedded in B");
        let c = render_json(&tiny_report(), Some(&b));
        // B's line is embedded in C; A's nested copy is gone.
        assert!(c.contains("\"cycles_per_sec\":3000000"), "{c}");
        assert!(!c.contains("\"baseline\": null"), "{c}");
        assert_eq!(c.matches("\"kernels\": [").count(), 2);
        // Speedup still compares against the immediate predecessor (B).
        assert!(c.contains("\"speedup_vs_baseline\":0.667"), "{c}");
    }

    #[test]
    fn alloc_gate_accepts_lean_profiles_and_rejects_regressions() {
        let mut r = tiny_report();
        // 12 allocs / 164 cycles ≈ 0.073 — passes.
        assert!(check_alloc_gate(&r).is_ok());
        r.steady_state = Some(SteadyState {
            cycles: 100,
            allocs: 26,
            bytes: 0,
            pes: 64,
            active_pe_cycles: 0,
            batched_pe_cycles: 0,
            orch_steps: 0,
            orch_polls_skipped: 0,
            wake_events: 0,
            replayed_cycles: 0,
            replay_stretches: 0,
        });
        let err = check_alloc_gate(&r).unwrap_err();
        assert!(err.contains("0.2600"), "{err}");
        r.steady_state = None;
        assert!(check_alloc_gate(&r).is_err());
    }

    #[test]
    fn throughput_gate_passes_at_parity_and_fails_on_regression() {
        let base = render_json(&tiny_report(), None);
        // Parity: geomean 1.0 ≥ 0.90.
        assert!(check_throughput_gate(&tiny_report(), &base).is_ok());
        // 2x faster: fine.
        let mut faster = tiny_report();
        faster.kernels[0].cycles_per_sec *= 2.0;
        assert!(check_throughput_gate(&faster, &base).is_ok());
        // 20% slower at identical host speed: gated.
        let mut slower = tiny_report();
        slower.kernels[0].cycles_per_sec *= 0.8;
        let err = check_throughput_gate(&slower, &base).unwrap_err();
        assert!(err.contains("0.800"), "{err}");
        // No overlapping kernel names: explicit error, not a silent pass.
        let mut renamed = tiny_report();
        renamed.kernels[0].name = "OTHER".into();
        assert!(check_throughput_gate(&renamed, &base).is_err());
    }

    #[test]
    fn throughput_gate_normalizes_host_speed() {
        let base = render_json(&tiny_report(), None);
        // A uniformly 2x-slower host: kernels AND calibration halve — the
        // normalized geomean is 1.0 and the gate passes.
        let mut slow_host = tiny_report();
        slow_host.kernels[0].cycles_per_sec *= 0.5;
        slow_host.calib_ops_per_sec *= 0.5;
        assert!(check_throughput_gate(&slow_host, &base).is_ok());
        // A faster host with flat kernel throughput: the raw reading (1.0)
        // carries the gate — absolute throughput did not regress, so CI
        // must not fail on a runner upgrade.
        let mut faster_host = tiny_report();
        faster_host.calib_ops_per_sec *= 2.0;
        assert!(check_throughput_gate(&faster_host, &base).is_ok());
        // A regression that fails BOTH readings is gated, and the message
        // carries the host ratio for diagnosis.
        let mut regressed = tiny_report();
        regressed.kernels[0].cycles_per_sec *= 0.5;
        regressed.calib_ops_per_sec *= 1.1;
        let err = check_throughput_gate(&regressed, &base).unwrap_err();
        assert!(err.contains("host speed"), "{err}");
        // A baseline without calibration falls back to the raw comparison.
        let legacy = base.replace("\"calib_ops_per_sec\"", "\"calib_removed\"");
        assert!(check_throughput_gate(&tiny_report(), &legacy).is_ok());
        let mut slower = tiny_report();
        slower.kernels[0].cycles_per_sec *= 0.8;
        assert!(check_throughput_gate(&slower, &legacy).is_err());
    }

    #[test]
    fn large_section_roundtrips_and_reports_batch_ab() {
        let json = render_json(&tiny_report(), None);
        // Entries are keyed `name@RxC`, so the large GEMM line never
        // collides with the scalar-tier "GEMM" kernel line.
        assert_eq!(
            extract_number(&json, "GEMM@64x64", "batched_cps"),
            Some(5_000.0)
        );
        assert_eq!(
            extract_number(&json, "GEMM@64x64", "batch_speedup"),
            Some(1.25)
        );
        // Replay diagnostics ride on the same line: throughput with the
        // full default engine, on/off speedup, fraction fast-forwarded,
        // stretch count, and mean captured period length.
        assert_eq!(
            extract_number(&json, "GEMM@64x64", "replay_cps"),
            Some(30_000.0)
        );
        assert_eq!(
            extract_number(&json, "GEMM@64x64", "replay_speedup"),
            Some(6.0)
        );
        assert_eq!(
            extract_number(&json, "GEMM@64x64", "replay_hit_rate"),
            Some(0.6)
        );
        // 0.60 · 2373 cycles over 2 stretches ≈ 711.9 per period.
        assert_eq!(
            extract_number(&json, "GEMM@64x64", "replay_period"),
            Some(711.9)
        );
        assert_eq!(
            extract_number(&json, "GEMM", "cycles_per_sec"),
            Some(2_000_000.0),
            "scalar kernel extraction unaffected by the large section"
        );
        // Self-contained per-geometry A/B geomeans plus the steady-state
        // batch hit rate land in the JSON without a baseline.
        assert!(
            json.contains("\"large_batch\": {\"geomean_64x64\":1.250}"),
            "{json}"
        );
        assert!(
            json.contains("\"large_replay\": {\"geomean_64x64\":6.000}"),
            "{json}"
        );
        assert!(json.contains("\"batch_hit_rate\":0.2500"), "{json}");
        assert!(json.contains("\"replayed_cycles\":0"), "{json}");
        let text = render_text(&tiny_report());
        assert!(
            text.contains("batch on/off geomean 1.250x, replay on/off geomean 6.000x"),
            "{text}"
        );
        assert!(text.contains("batch fast path: 1025 of 4100"), "{text}");
        assert!(text.contains("replay engine: 0 of 164 cycles"), "{text}");
    }

    #[test]
    fn large_gate_tracks_the_default_engine_configuration() {
        let base = render_json(&tiny_report(), None);
        // A replay-era baseline compares replay_cps to replay_cps: a report
        // whose batched_cps regressed but whose default-config throughput
        // held is NOT gated …
        let mut batch_slower = tiny_report();
        batch_slower.large[0].batched_cps *= 0.5;
        assert!(check_large_gate(&batch_slower, &base).is_ok());
        // … while a default-config regression is, even with batched_cps
        // flat.
        let mut replay_slower = tiny_report();
        replay_slower.large[0].replay_cps *= 0.8;
        assert!(check_large_gate(&replay_slower, &base).is_err());
        // A pre-replay baseline (no replay_cps key) falls back to its
        // batched_cps — then the default engine configuration: 30000 vs
        // 5000 passes easily.
        let legacy = base
            .lines()
            .map(|l| {
                if l.contains("\"replay_cps\"") {
                    // Strip the replay fields (the line's tail before the
                    // closing brace) the way an old renderer simply would
                    // not have written them.
                    let cut = l.find(",\"replay_cps\"").unwrap();
                    format!("{}}}", &l[..cut])
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        assert!(extract_number(&legacy, "GEMM@64x64", "replay_cps").is_none());
        assert_eq!(check_large_gate(&tiny_report(), &legacy), Ok(Some(6.0)));
    }

    #[test]
    fn large_gate_passes_fails_and_tolerates_old_baselines() {
        let base = render_json(&tiny_report(), None);
        // Parity passes and reports the geomean.
        assert_eq!(check_large_gate(&tiny_report(), &base), Ok(Some(1.0)),);
        // A 20% large-tier regression at identical host speed is gated.
        let mut slower = tiny_report();
        slower.large[0].replay_cps *= 0.8;
        let err = check_large_gate(&slower, &base).unwrap_err();
        assert!(err.contains("large-tier"), "{err}");
        // A baseline that predates the large section (tier absent) skips
        // the gate instead of erroring — no schema break.
        let mut legacy_report = tiny_report();
        legacy_report.large.clear();
        let legacy = render_json(&legacy_report, None);
        assert!(!legacy.contains("GEMM@64x64"));
        assert_eq!(check_large_gate(&tiny_report(), &legacy), Ok(None));
        // A report that skipped the tier (--reps 0) has nothing to gate.
        assert_eq!(check_large_gate(&legacy_report, &base), Ok(None));
    }

    #[test]
    fn kernel_sampler_measures_something() {
        // A single small kernel with no minimum sample time keeps this fast
        // in debug builds; the full sweep over tensor_ops runs in `repro
        // bench`.
        let backend = CanonBackend::default();
        let op = canon_workloads::TensorOp::Gemm {
            m: 32,
            k: 32,
            n: 32,
        };
        let k = bench_one(&backend, "GEMM".into(), &op, 1, 0.0);
        assert_eq!(k.reps, 1);
        assert!(k.sim_cycles > 0);
        assert!(k.cycles_per_sec > 0.0);
        assert!(k.wall_ms > 0.0);
    }
}
