//! Per-figure regeneration entry points.
//!
//! Multi-architecture figures dispatch every workload through the uniform
//! [`Backend`](canon_sweep::backend::Backend) trait — there is no
//! per-figure, per-kernel dispatch here. Single-architecture parameter
//! studies (Figs 15/17) drive the SpMM kernel directly, since the swept
//! parameter (array scale, scratchpad depth) *is* the experiment.

use crate::workloads12::{all_columns, Column};
use crate::{format_matrix, Scale};
use canon_core::kernels::spmm::{run_spmm, SpmmMapping};
use canon_core::offchip;
use canon_core::CanonConfig;
use canon_energy::{arch_area, canon_energy, edp, Arch};
use canon_sparse::gen::{self, SparsityBand};
use canon_sparse::stats::spmm_ops_per_byte;
use canon_sparse::Dense;
use canon_sweep::backend::{all_backends, CanonBackend, OperandCache};
use canon_workloads::{fig11_workloads, fig14_workloads, TensorOp};
use std::fmt::Write as _;

/// Table 1: the evaluated configuration.
pub fn table1() -> String {
    let cfg = CanonConfig::default();
    let mut out = String::new();
    let _ = writeln!(out, "== Table 1: Canon configuration ==");
    let _ = writeln!(
        out,
        "Array          : {}x{} 4-SIMD INT8 array ({} MACs)",
        cfg.rows,
        cfg.cols,
        cfg.mac_units()
    );
    let _ = writeln!(
        out,
        "SRAM           : {} KB per PE; {} KB overall (+ edge stream buffers)",
        cfg.dmem_words * 4 / 1024,
        cfg.dmem_bytes_total() / 1024
    );
    let _ = writeln!(
        out,
        "Scratchpad     : dual-port, {} bytes per PE ({} vector entries)",
        cfg.spad_bytes_per_pe(),
        cfg.spad_entries
    );
    let _ = writeln!(out, "Orchestrators  : {} (one per PE row)", cfg.rows);
    let _ = writeln!(
        out,
        "Main memory    : {:.0} GB/s LPDDR5X ({} B/cycle at 1 GHz)",
        cfg.offchip_bytes_per_cycle, cfg.offchip_bytes_per_cycle
    );
    out
}

/// Fig 9: feature ablation — area of Canon relative to each baseline.
pub fn fig09() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Fig 9: area ablation through the baselines ==");
    let canon = arch_area(Arch::Canon).total();
    for arch in [Arch::Systolic, Arch::Zed, Arch::Cgra] {
        let other = arch_area(arch).total();
        let delta = (canon / other - 1.0) * 100.0;
        let _ = writeln!(
            out,
            "Canon vs {:<12} : {:+5.1}% area   (paper: {})",
            arch.label(),
            delta,
            match arch {
                Arch::Systolic => "+30%",
                Arch::Zed => "+9..12%",
                _ => "-7%",
            }
        );
    }
    out
}

/// Fig 10: area breakdown of Canon vs the systolic array.
pub fn fig10() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Fig 10: area breakdown (Canon = 100%) ==");
    let canon = arch_area(Arch::Canon);
    let canon_total = canon.total();
    for (name, a) in &canon.components {
        let _ = writeln!(out, "Canon    {name:<18} {:5.1}%", a / canon_total * 100.0);
    }
    let sys = arch_area(Arch::Systolic);
    let _ = writeln!(
        out,
        "Systolic total              {:5.1}% of Canon (generality overhead {:.1}%)",
        sys.total() / canon_total * 100.0,
        (1.0 - sys.total() / canon_total) * 100.0
    );
    out
}

/// Fig 11: runtime per-PE power breakdown + FSM state-transition counts.
pub fn fig11(scale: Scale) -> String {
    let backend = CanonBackend::default();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Fig 11: Canon per-PE power breakdown (mW @ 1 GHz) and FSM transitions =="
    );
    let _ = writeln!(
        out,
        "{:<22} {:>8} {:>10} {:>10} {:>9} {:>12} {:>12}",
        "workload", "dmem", "spad-rd", "spad-wr", "compute", "ctrl+route", "transitions"
    );
    let mut run_one = |label: String, report: &canon_core::stats::RunReport| {
        let e = canon_energy(report);
        let per_pe = |pj: f64| {
            if report.cycles == 0 {
                0.0
            } else {
                pj * 1e-12 / (report.cycles as f64 / 1e9) * 1e3 / report.pes as f64
            }
        };
        let _ = writeln!(
            out,
            "{:<22} {:>8.3} {:>10.3} {:>10.3} {:>9.3} {:>12.3} {:>12}",
            label,
            per_pe(e.component("data memory")),
            per_pe(e.component("spad-read")),
            per_pe(e.component("spad-write")),
            per_pe(e.component("compute")),
            per_pe(e.component("control & routing")),
            report.stats.orch_transitions
        );
    };
    // GEMM reference point (systolic-style dataflow, no scratchpad power),
    // then the banded CNN/attention workloads — all through the uniform
    // backend entry point.
    let gemm = TensorOp::Gemm {
        m: scale.dim(128),
        k: scale.dim(256),
        n: scale.dim(64),
    };
    let r = backend.run_report(&gemm, 111).expect("gemm maps");
    run_one("GEMM".into(), &r);
    let ws = fig11_workloads(match scale {
        Scale::Full | Scale::Large => 8,
        Scale::Smoke => 32,
    });
    for (name, band, op) in ws {
        // Distinct operand stream per band (representative() is fractional,
        // so scale before truncating).
        let seed = 112 + (band.representative() * 100.0) as u64;
        let report = backend
            .run_report(&op, seed)
            .unwrap_or_else(|e| panic!("{name}-{band}: {e}"));
        run_one(format!("{name}-{band}"), &report);
    }
    let _ = writeln!(
        out,
        "\n(Shape check: scratchpad power ≈ 0 for GEMM, grows S1→S3; transitions grow with sparsity.)"
    );
    out
}

fn fig1213_rows(
    columns: &[Column],
    select: impl Fn(&Column) -> Vec<Option<f64>>,
) -> Vec<(&'static str, Vec<Option<f64>>)> {
    Arch::all()
        .iter()
        .enumerate()
        .map(|(i, a)| {
            (
                a.label(),
                columns.iter().map(|c| select(c)[i]).collect::<Vec<_>>(),
            )
        })
        .collect()
}

/// Fig 12: normalized performance across the 12-kernel grid.
pub fn fig12(scale: Scale) -> String {
    let columns = all_columns(scale);
    let names: Vec<String> = columns.iter().map(|c| c.name.clone()).collect();
    format_matrix(
        "Fig 12: performance normalized to Canon",
        &names,
        &fig1213_rows(&columns, Column::norm_perf),
    )
}

/// Fig 13: normalized perf/W across the same grid.
pub fn fig13(scale: Scale) -> String {
    let columns = all_columns(scale);
    let names: Vec<String> = columns.iter().map(|c| c.name.clone()).collect();
    format_matrix(
        "Fig 13: perf/W normalized to Canon",
        &names,
        &fig1213_rows(&columns, Column::norm_perf_watt),
    )
}

/// Fig 12 + Fig 13 from a single simulation pass.
pub fn fig1213(scale: Scale) -> String {
    let columns = all_columns(scale);
    let names: Vec<String> = columns.iter().map(|c| c.name.clone()).collect();
    let mut out = format_matrix(
        "Fig 12: performance normalized to Canon",
        &names,
        &fig1213_rows(&columns, Column::norm_perf),
    );
    out.push('\n');
    out.push_str(&format_matrix(
        "Fig 13: perf/W normalized to Canon",
        &names,
        &fig1213_rows(&columns, Column::norm_perf_watt),
    ));
    out
}

/// Fig 14: EDP of real ML model components, normalized to Canon.
pub fn fig14(scale: Scale) -> String {
    let backends = all_backends(&CanonConfig::default());
    let model_scale = match scale {
        Scale::Full | Scale::Large => 16,
        Scale::Smoke => 64,
    };
    let mut columns = Vec::new();
    let mut rows: Vec<(&'static str, Vec<Option<f64>>)> = Arch::all()
        .iter()
        .map(|a| (a.label(), Vec::new()))
        .collect();
    let cache = OperandCache::new();
    for w in fig14_workloads(model_scale) {
        columns.push(format!("{}({})", w.name, w.sparsity_note));
        // Accumulate (cycles, energy) per architecture over the component's
        // ops; any unsupported op marks the whole component unsupported.
        let mut totals: Vec<Option<(u64, f64)>> = vec![Some((0, 0.0)); backends.len()];
        for (oi, op) in w.ops.iter().enumerate() {
            let seed = 140 + w.useful_macs() % 97 + oi as u64;
            let workload = canon_workloads::Workload::Tensor(*op);
            for (i, backend) in backends.iter().enumerate() {
                let run = backend
                    .run_cached(&workload, seed, &cache)
                    .ok()
                    .map(|r| (r.cycles, r.energy_pj));
                totals[i] = match (totals[i], run) {
                    (Some((c0, e0)), Some((c, e))) => Some((c0 + c, e0 + e)),
                    _ => None,
                };
            }
        }
        let canon_idx = backends
            .iter()
            .position(|b| b.arch() == Arch::Canon)
            .expect("Canon backend present");
        let canon_edp = totals[canon_idx]
            .map(|(c, e)| edp(e, c, 1e9))
            .expect("canon runs everything");
        for (i, row) in rows.iter_mut().enumerate() {
            row.1
                .push(totals[i].map(|(c, e)| edp(e, c, 1e9) / canon_edp));
        }
    }
    format_matrix(
        "Fig 14: EDP normalized to Canon (lower is better; log scale in the paper)",
        &columns,
        &rows,
    )
}

/// Fig 15: compute utilization vs array/problem scale, with arithmetic
/// intensity per point.
pub fn fig15(scale: Scale) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Fig 15: utilization vs array/problem scale (arith. intensity per point) =="
    );
    let _ = writeln!(
        out,
        "{:>6} {:>10} {:>9} {:>13} {:>12}",
        "scale", "sparsity", "PEs", "AI(ops/elem)", "utilization"
    );
    let factors: &[usize] = match scale {
        Scale::Full | Scale::Large => &[1, 2, 4, 8],
        Scale::Smoke => &[1, 2],
    };
    for &f in factors {
        let cfg = CanonConfig::default().scaled(f);
        for sparsity in [0.3, 0.6, 0.9] {
            let m = 32 * f;
            let k = 256 * f;
            let n = 4 * cfg.cols; // one column tile
            let mut rng = gen::seeded_rng(150 + f as u64);
            let a = gen::skewed_sparse(m, k, sparsity, 1.5, &mut rng);
            let b = Dense::random(k, n, &mut rng);
            let r = run_spmm(&cfg, &SpmmMapping::default(), &a, &b).expect("spmm");
            let ai = spmm_ops_per_byte(m, k, n, a.nnz(), 1);
            let _ = writeln!(
                out,
                "{:>5}x {:>10.2} {:>9} {:>13.1} {:>12.3}",
                f,
                sparsity,
                cfg.pe_count(),
                ai,
                r.report.compute_utilization()
            );
        }
    }
    let _ = writeln!(
        out,
        "\n(Shape check: utilization tracks arithmetic intensity, not array size.)"
    );
    out
}

/// Fig 16: required off-chip bandwidth vs arithmetic intensity per SRAM size.
pub fn fig16() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Fig 16: bandwidth (GB/s) to hit the compute roofline vs arithmetic intensity =="
    );
    let (m, k, n) = (2048usize, 1024usize, 1024usize);
    let srams = [72usize, 144, 288, 576, 1152];
    let _ = write!(out, "{:>14}", "AI(ops/B)");
    for kb in srams {
        let _ = write!(out, "{:>11}", format!("{kb}KB"));
    }
    let _ = writeln!(out, "{:>11}{:>11}", "x16 limit", "x32 limit");
    for density_pct in [100usize, 75, 50, 30, 20, 10, 5] {
        let nnz = m * k * density_pct / 100;
        let mut ai_shown = None;
        let mut row = String::new();
        for kb in srams {
            let p = offchip::spmm_bandwidth_requirement(m, k, n, nnz, kb * 1024, 256);
            ai_shown.get_or_insert(p.ops_per_byte);
            let _ = write!(row, "{:>11.2}", p.required_gbps);
        }
        let _ = writeln!(
            out,
            "{:>14.1}{row}{:>11.1}{:>11.1}",
            ai_shown.unwrap_or(0.0),
            offchip::LPDDR5X_X16_GBPS,
            offchip::LPDDR5X_X32_GBPS
        );
    }
    let _ = writeln!(
        out,
        "\n(Shape check: bandwidth grows as sparsity rises (AI falls) and flattens once B fits on chip.)"
    );
    out
}

/// Fig 17: utilization vs scratchpad depth across sparsity deciles.
pub fn fig17(scale: Scale) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Fig 17: compute utilization vs scratchpad depth ==");
    let depths: &[usize] = match scale {
        Scale::Full | Scale::Large => &[1, 4, 8, 16, 32, 64],
        Scale::Smoke => &[1, 16],
    };
    let sparsities: Vec<f64> = match scale {
        Scale::Full | Scale::Large => (0..9).map(|i| i as f64 / 10.0 + 0.05).collect(),
        Scale::Smoke => vec![0.45, 0.85],
    };
    let _ = write!(out, "{:>12}", "sparsity");
    for d in depths {
        let _ = write!(out, "{:>9}", format!("d={d}"));
    }
    let _ = writeln!(out);
    // K = 128 (16 B-rows per PE row) with strongly skewed rows: the regime
    // where psum traffic and straggler imbalance make buffering matter.
    let m = scale.dim(256);
    let k = scale.dim(128);
    let n = 32;
    for &s in &sparsities {
        let _ = write!(out, "{s:>12.2}");
        for &d in depths {
            let cfg = CanonConfig {
                spad_entries: d.max(1),
                ..CanonConfig::default()
            };
            let mut rng = gen::seeded_rng(170 + (s * 100.0) as u64);
            let a = gen::skewed_sparse(m, k, s, 4.0, &mut rng);
            let b = Dense::random(k, n, &mut rng);
            let mapping = SpmmMapping {
                spad_depth: d,
                ..SpmmMapping::default()
            };
            let r = run_spmm(&cfg, &mapping, &a, &b).expect("spmm");
            let _ = write!(out, "{:>9.3}", r.report.compute_utilization());
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "\n(Shape check: deeper buffers help at sparsity ≥ 0.6; depth ~16 is the knee.)"
    );
    out
}

/// Convenience: all sparsity bands in one label.
pub fn band_label(b: SparsityBand) -> &'static str {
    match b {
        SparsityBand::S1 => "S1",
        SparsityBand::S2 => "S2",
        SparsityBand::S3 => "S3",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_mentions_key_parameters() {
        let t = table1();
        assert!(t.contains("8x8"));
        assert!(t.contains("256 MACs"));
        assert!(t.contains("LPDDR5X"));
    }

    #[test]
    fn fig09_and_fig10_render() {
        let f9 = fig09();
        assert!(f9.contains("vs Systolic"));
        let f10 = fig10();
        assert!(f10.contains("scratchpad"));
        assert!(f10.contains("Systolic total"));
    }

    #[test]
    fn fig16_is_monotone_in_sram() {
        let f = fig16();
        assert!(f.contains("72KB"));
        assert!(f.contains("1152KB"));
    }

    #[test]
    fn smoke_fig11_runs() {
        let f = fig11(Scale::Smoke);
        assert!(f.contains("GEMM"));
        assert!(f.contains("S3"));
    }

    #[test]
    fn smoke_fig17_runs() {
        let f = fig17(Scale::Smoke);
        assert!(f.contains("d=16"));
    }
}
