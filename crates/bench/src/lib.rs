//! The Canon reproduction harness: one entry point per table/figure of the
//! paper's evaluation (§6), each regenerating the corresponding rows/series
//! from the workspace's simulators and models.
//!
//! Run via the `repro` binary:
//!
//! ```sh
//! cargo run -p canon-bench --release --bin repro -- all
//! cargo run -p canon-bench --release --bin repro -- fig12
//! ```
//!
//! Every function takes a [`Scale`] so the criterion benches can exercise the
//! same code paths on reduced sizes, and returns the formatted report it
//! prints, so tests can assert on structure.

pub mod ablations;
pub mod bench;
pub mod figures;
pub mod workloads12;

pub use figures::*;

/// Problem-size preset for the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny sizes for CI / criterion benches.
    Smoke,
    /// The sizes used for EXPERIMENTS.md (laptop-scale, minutes).
    Full,
}

impl Scale {
    /// Multiplies a full-scale dimension down for smoke runs, keeping
    /// mapping-friendly granularity: the quarter-scale dimension is rounded
    /// *up* to a multiple of 32 (the default fabric's `rows` and
    /// `cols·lanes` granularities), minimum 32, so smoke shapes always
    /// satisfy the kernels' divisibility constraints.
    pub fn dim(self, full: usize) -> usize {
        match self {
            Scale::Full => full,
            Scale::Smoke => (full / 4).div_ceil(32).max(1) * 32,
        }
    }
}

// The architecture × workload table renderer lives with the sweep reports;
// the figures keep using it under its original name.
pub use canon_sweep::report::format_matrix;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_dims() {
        assert_eq!(Scale::Full.dim(256), 256);
        assert_eq!(Scale::Smoke.dim(256), 64);
        assert_eq!(Scale::Smoke.dim(64), 32);
    }

    #[test]
    fn smoke_dims_are_mapping_friendly_multiples_of_32() {
        // Quarter-scale rounds *up* to a multiple of 32 rather than
        // truncating: dim(200) = 50 -> 64, not 50; dim(100) = 25 -> 32.
        assert_eq!(Scale::Smoke.dim(200), 64);
        assert_eq!(Scale::Smoke.dim(100), 32);
        assert_eq!(Scale::Smoke.dim(33), 32);
        assert_eq!(Scale::Smoke.dim(512), 128);
        for full in [1, 33, 100, 192, 200, 255, 256, 1000, 14336] {
            let d = Scale::Smoke.dim(full);
            assert_eq!(d % 32, 0, "dim({full}) = {d} not a multiple of 32");
            assert!(d >= 32, "dim({full}) = {d} below the 32 minimum");
        }
    }

    #[test]
    fn matrix_formatting_renders_x() {
        let s = format_matrix(
            "t",
            &["a".into(), "b".into()],
            &[("canon", vec![Some(1.0), None])],
        );
        assert!(s.contains("X"));
        assert!(s.contains("1.000"));
    }
}
