//! The Canon reproduction harness: one entry point per table/figure of the
//! paper's evaluation (§6), each regenerating the corresponding rows/series
//! from the workspace's simulators and models.
//!
//! Run via the `repro` binary:
//!
//! ```sh
//! cargo run -p canon-bench --release --bin repro -- all
//! cargo run -p canon-bench --release --bin repro -- fig12
//! ```
//!
//! Every function takes a [`Scale`] so the criterion benches can exercise the
//! same code paths on reduced sizes, and returns the formatted report it
//! prints, so tests can assert on structure.

pub mod ablations;
pub mod bench;
pub mod figures;
pub mod workloads12;

pub use figures::*;

/// Problem-size preset for the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny sizes for CI / criterion benches.
    Smoke,
    /// The sizes used for EXPERIMENTS.md (laptop-scale, minutes).
    Full,
    /// The large-fabric tier: 64×64 / 128×64 geometries with real-sized
    /// operands. Dimensions are doubled from full scale and rounded up to
    /// multiples of 128 so every shape satisfies the mapping divisibility
    /// constraints (`K % rows`, `N % cols·lanes`) of both large geometries.
    Large,
}

impl Scale {
    /// Scales a full-scale dimension for the preset, keeping
    /// mapping-friendly granularity: smoke quarters and rounds *up* to a
    /// multiple of 32 (the default fabric's `rows` and `cols·lanes`
    /// granularities), large doubles and rounds up to a multiple of 128
    /// (the 128-row fabric's granularity), so shapes always satisfy the
    /// kernels' divisibility constraints at their tier's geometries.
    pub fn dim(self, full: usize) -> usize {
        match self {
            Scale::Full => full,
            Scale::Smoke => (full / 4).div_ceil(32).max(1) * 32,
            Scale::Large => (full * 2).div_ceil(128).max(1) * 128,
        }
    }
}

// The architecture × workload table renderer lives with the sweep reports;
// the figures keep using it under its original name.
pub use canon_sweep::report::format_matrix;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_dims() {
        assert_eq!(Scale::Full.dim(256), 256);
        assert_eq!(Scale::Smoke.dim(256), 64);
        assert_eq!(Scale::Smoke.dim(64), 32);
        assert_eq!(Scale::Large.dim(256), 512);
        assert_eq!(Scale::Large.dim(100), 256);
    }

    #[test]
    fn large_dims_satisfy_128_row_granularity() {
        for full in [1, 33, 64, 100, 128, 200, 256, 512, 1000] {
            let d = Scale::Large.dim(full);
            assert_eq!(d % 128, 0, "dim({full}) = {d} not a multiple of 128");
            assert!(d >= 128, "dim({full}) = {d} below the 128 minimum");
            assert!(d >= full, "large tier must not shrink a dimension");
        }
    }

    #[test]
    fn smoke_dims_are_mapping_friendly_multiples_of_32() {
        // Quarter-scale rounds *up* to a multiple of 32 rather than
        // truncating: dim(200) = 50 -> 64, not 50; dim(100) = 25 -> 32.
        assert_eq!(Scale::Smoke.dim(200), 64);
        assert_eq!(Scale::Smoke.dim(100), 32);
        assert_eq!(Scale::Smoke.dim(33), 32);
        assert_eq!(Scale::Smoke.dim(512), 128);
        for full in [1, 33, 100, 192, 200, 255, 256, 1000, 14336] {
            let d = Scale::Smoke.dim(full);
            assert_eq!(d % 32, 0, "dim({full}) = {d} not a multiple of 32");
            assert!(d >= 32, "dim({full}) = {d} below the 32 minimum");
        }
    }

    #[test]
    fn matrix_formatting_renders_x() {
        let s = format_matrix(
            "t",
            &["a".into(), "b".into()],
            &[("canon", vec![Some(1.0), None])],
        );
        assert!(s.contains("X"));
        assert!(s.contains("1.000"));
    }
}
