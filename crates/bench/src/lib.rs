//! The Canon reproduction harness: one entry point per table/figure of the
//! paper's evaluation (§6), each regenerating the corresponding rows/series
//! from the workspace's simulators and models.
//!
//! Run via the `repro` binary:
//!
//! ```sh
//! cargo run -p canon-bench --release --bin repro -- all
//! cargo run -p canon-bench --release --bin repro -- fig12
//! ```
//!
//! Every function takes a [`Scale`] so the criterion benches can exercise the
//! same code paths on reduced sizes, and returns the formatted report it
//! prints, so tests can assert on structure.

pub mod ablations;
pub mod figures;
pub mod workloads12;

pub use figures::*;

/// Problem-size preset for the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny sizes for CI / criterion benches.
    Smoke,
    /// The sizes used for EXPERIMENTS.md (laptop-scale, minutes).
    Full,
}

impl Scale {
    /// Multiplies a full-scale dimension down for smoke runs, keeping
    /// mapping-friendly granularity.
    pub fn dim(self, full: usize) -> usize {
        match self {
            Scale::Full => full,
            Scale::Smoke => (full / 4).max(32),
        }
    }
}

/// Formats a normalized-metric table: rows = architectures, columns =
/// workloads; `None` renders as `X` (unsupported), as in Figs 12/13.
pub fn format_matrix(
    title: &str,
    columns: &[String],
    rows: &[(&'static str, Vec<Option<f64>>)],
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let _ = write!(out, "{:<14}", "arch");
    for c in columns {
        let _ = write!(out, "{c:>13}");
    }
    let _ = writeln!(out);
    for (name, vals) in rows {
        let _ = write!(out, "{name:<14}");
        for v in vals {
            match v {
                Some(x) => {
                    let _ = write!(out, "{x:>13.3}");
                }
                None => {
                    let _ = write!(out, "{:>13}", "X");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_dims() {
        assert_eq!(Scale::Full.dim(256), 256);
        assert_eq!(Scale::Smoke.dim(256), 64);
        assert_eq!(Scale::Smoke.dim(64), 32);
    }

    #[test]
    fn matrix_formatting_renders_x() {
        let s = format_matrix(
            "t",
            &["a".into(), "b".into()],
            &[("canon", vec![Some(1.0), None])],
        );
        assert!(s.contains("X"));
        assert!(s.contains("1.000"));
    }
}
