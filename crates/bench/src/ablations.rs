//! Design-choice ablations beyond the paper's numbered figures (DESIGN.md §6).

use crate::Scale;
use canon_core::kernels::spmm::{run_spmm, OrchKind, SpmmMapping};
use canon_core::CanonConfig;
use canon_sparse::gen::{self, SparsityBand};
use canon_sparse::Dense;
use std::fmt::Write as _;

/// Ablation: asynchronous reduction + managed window (Listing 1 FSM) vs the
/// window-less register mode on skewed high-sparsity inputs — quantifies
/// Fig 8's decision paths.
pub fn ablation_async(scale: Scale) -> String {
    let cfg = CanonConfig::default();
    let m = scale.dim(192);
    let k = scale.dim(256);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Ablation: asynchronous reduction + buffer management vs direct flush =="
    );
    let _ = writeln!(
        out,
        "{:>10} {:>14} {:>14} {:>9}",
        "sparsity", "window cycles", "direct cycles", "speedup"
    );
    for sparsity in [0.5, 0.7, 0.85] {
        let mut rng = gen::seeded_rng(200);
        let a = gen::skewed_sparse(m, k, sparsity, 3.0, &mut rng);
        let b = Dense::random(k, 32, &mut rng);
        let windowed = run_spmm(&cfg, &SpmmMapping::default(), &a, &b)
            .expect("spmm")
            .report
            .cycles;
        let direct = run_spmm(
            &cfg,
            &SpmmMapping {
                use_scratchpad: false,
                ..SpmmMapping::default()
            },
            &a,
            &b,
        )
        .expect("spmm")
        .report
        .cycles;
        let _ = writeln!(
            out,
            "{sparsity:>10.2} {windowed:>14} {direct:>14} {:>8.2}x",
            direct as f64 / windowed as f64
        );
    }
    out
}

/// Ablation: §6.5's sparsity-aware effective buffer sizing — picking the
/// scratchpad window per expected band vs the conservative fixed 16.
pub fn ablation_buffer_sizing(scale: Scale) -> String {
    let cfg = CanonConfig::default();
    let m = scale.dim(192);
    let k = scale.dim(256);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Ablation: band-aware scratchpad sizing (§6.5, +~5% claim) =="
    );
    let _ = writeln!(
        out,
        "{:>6} {:>10} {:>13} {:>13} {:>8}",
        "band", "depth", "fixed-16 cyc", "tuned cyc", "delta"
    );
    for (band, tuned_depth) in [
        (SparsityBand::S1, 4usize),
        (SparsityBand::S2, 8),
        (SparsityBand::S3, 16),
    ] {
        let mut rng = gen::seeded_rng(210);
        let a = gen::skewed_sparse(m, k, band.representative(), 2.0, &mut rng);
        let b = Dense::random(k, 32, &mut rng);
        let fixed = run_spmm(&cfg, &SpmmMapping::default(), &a, &b)
            .expect("spmm")
            .report;
        let tuned = run_spmm(
            &cfg,
            &SpmmMapping {
                spad_depth: tuned_depth,
                ..SpmmMapping::default()
            },
            &a,
            &b,
        )
        .expect("spmm")
        .report;
        let _ = writeln!(
            out,
            "{:>6} {:>10} {:>13} {:>13} {:>7.1}%",
            crate::figures::band_label(band),
            tuned_depth,
            fixed.cycles,
            tuned.cycles,
            (fixed.cycles as f64 / tuned.cycles as f64 - 1.0) * 100.0
        );
    }
    out
}

/// Ablation: LUT-bitstream orchestrator vs native FSM (must be identical).
pub fn ablation_lut(scale: Scale) -> String {
    let cfg = CanonConfig::default();
    let m = scale.dim(96);
    let k = scale.dim(128);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Ablation: LUT-bitstream orchestrator vs native FSM (expected: identical) =="
    );
    let mut rng = gen::seeded_rng(220);
    let a = gen::skewed_sparse(m, k, 0.7, 2.0, &mut rng);
    let b = Dense::random(k, 32, &mut rng);
    let native = run_spmm(&cfg, &SpmmMapping::default(), &a, &b).expect("spmm");
    let lut = run_spmm(
        &cfg,
        &SpmmMapping {
            orchestrator: OrchKind::Lut,
            ..SpmmMapping::default()
        },
        &a,
        &b,
    )
    .expect("spmm");
    let _ = writeln!(out, "native FSM : {} cycles", native.report.cycles);
    let _ = writeln!(out, "LUT FSM    : {} cycles", lut.report.cycles);
    let _ = writeln!(
        out,
        "results equal: {}, cycles equal: {}",
        native.result == lut.result,
        native.report.cycles == lut.report.cycles
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn async_ablation_reports_speedup() {
        let s = ablation_async(Scale::Smoke);
        assert!(s.contains("speedup"));
    }

    #[test]
    fn lut_ablation_identical() {
        let s = ablation_lut(Scale::Smoke);
        assert!(s.contains("results equal: true, cycles equal: true"));
    }
}
