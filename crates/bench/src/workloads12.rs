//! The Fig 12/13 workload grid: 12 kernel columns × 5 architectures,
//! producing normalized performance and normalized perf/W in one pass.
//!
//! Every column — tensor kernels *and* PolyBench loop nests — executes
//! through the workspace-wide
//! [`Backend`](canon_sweep::backend::Backend) trait: one uniform
//! `run(workload, seed)` per architecture, no per-kernel dispatch. The
//! tensor-only accelerators return `Unsupported` for the loop columns,
//! which is exactly the figures' `X` cells.

use crate::Scale;
use canon_core::CanonConfig;
use canon_energy::{perf_per_watt, Arch};
use canon_loopir::{polybench, Category};
use canon_sweep::backend::{all_backends, OperandCache};
use canon_workloads::{LoopKernel, TensorOp, Workload};

/// One architecture's absolute numbers on one workload.
#[derive(Debug, Clone, Copy)]
pub struct ArchRun {
    /// Cycles to complete the workload.
    pub cycles: u64,
    /// Total energy in pJ.
    pub energy_pj: f64,
}

/// One workload column: the common useful work plus per-architecture runs
/// (`None` = unsupported, the `X` of Figs 12/13).
#[derive(Debug, Clone)]
pub struct Column {
    /// Column label as in the figures.
    pub name: String,
    /// Useful scalar MACs/ops of the workload (identical across archs).
    pub useful_macs: u64,
    /// Runs in [`Arch::all`] order.
    pub runs: Vec<Option<ArchRun>>,
}

/// Canon's row position in [`Arch::all`] order (the order of every
/// `Column::runs` vector).
pub fn canon_index() -> usize {
    Arch::all()
        .iter()
        .position(|a| *a == Arch::Canon)
        .expect("Canon is in Arch::all")
}

impl Column {
    fn canon(&self) -> ArchRun {
        self.runs[canon_index()].expect("Canon always runs its own workloads")
    }

    /// Performance of each architecture normalized to Canon.
    pub fn norm_perf(&self) -> Vec<Option<f64>> {
        let canon = self.canon();
        self.runs
            .iter()
            .map(|r| r.map(|r| canon.cycles as f64 / r.cycles.max(1) as f64))
            .collect()
    }

    /// Perf/W of each architecture normalized to Canon.
    pub fn norm_perf_watt(&self) -> Vec<Option<f64>> {
        let canon = self.canon();
        let base = perf_per_watt(self.useful_macs, canon.cycles, canon.energy_pj, 1e9);
        self.runs
            .iter()
            .map(|r| r.map(|r| perf_per_watt(self.useful_macs, r.cycles, r.energy_pj, 1e9) / base))
            .collect()
    }
}

/// The nine tensor-kernel workloads of Figs 12/13 at the given scale, with
/// their operand seeds.
pub fn tensor_ops(scale: Scale) -> Vec<(String, TensorOp, u64)> {
    let m = scale.dim(256);
    let k = scale.dim(256);
    let n = scale.dim(128);
    let mut ops: Vec<(String, TensorOp, u64)> =
        vec![("GEMM".into(), TensorOp::Gemm { m, k, n }, 101)];
    for (band, sparsity, seed) in [("S1", 0.15, 102u64), ("S2", 0.45, 103), ("S3", 0.80, 104)] {
        ops.push((
            format!("SpMM-{band}"),
            TensorOp::Spmm { m, k, n, sparsity },
            seed,
        ));
    }
    for (label, n_of, m_of, seed) in [("2:4", 2usize, 4usize, 105u64), ("2:8", 2, 8, 106)] {
        ops.push((
            format!("SpMM-{label}"),
            TensorOp::SpmmNm {
                m,
                k,
                n,
                n_of,
                m_of,
            },
            seed,
        ));
    }
    ops.push((
        "SDDMM".into(),
        TensorOp::SddmmUnstructured {
            seq: scale.dim(128),
            head_dim: 64,
            sparsity: 0.7,
        },
        107,
    ));
    // Win1 = Longformer ratios (window = seq/8, head 64);
    // Win2 = Mistral ratios (window = seq/4, head 128, longer context).
    ops.push((
        "SDDMM-Win1".into(),
        TensorOp::SddmmWindow {
            seq: scale.dim(256),
            window: scale.dim(256) / 8,
            head_dim: 64,
        },
        108,
    ));
    ops.push((
        "SDDMM-Win2".into(),
        TensorOp::SddmmWindow {
            seq: scale.dim(512),
            window: scale.dim(512) / 4,
            head_dim: 128,
        },
        108,
    ));
    ops
}

/// Builds the nine tensor-kernel columns of Figs 12/13 (everything except
/// the three PolyBench columns), dispatching uniformly through the
/// [`Backend`](canon_sweep::backend::Backend) trait.
pub fn tensor_columns(scale: Scale) -> Vec<Column> {
    let backends = all_backends(&CanonConfig::default());
    // One cache per pass: the five architectures of a column share one
    // operand materialization.
    let cache = OperandCache::new();
    tensor_ops(scale)
        .into_iter()
        .map(|(name, op, seed)| {
            let workload = Workload::Tensor(op);
            let runs: Vec<Option<ArchRun>> = backends
                .iter()
                .map(|b| {
                    b.run_cached(&workload, seed, &cache).ok().map(|r| ArchRun {
                        cycles: r.cycles,
                        energy_pj: r.energy_pj,
                    })
                })
                .collect();
            assert!(runs[canon_index()].is_some(), "Canon must map {name}");
            Column {
                name,
                useful_macs: op.useful_macs(),
                runs,
            }
        })
        .collect()
}

/// The three PolyBench columns: per-category geometric means of every
/// architecture's loop-nest runs, dispatched through the same `Backend`
/// trait as the tensor columns. Tensor-only accelerators return
/// `Unsupported` for every kernel, which renders as the figures' `X`.
pub fn polybench_columns(scale: Scale) -> Vec<Column> {
    let n = scale.dim(64);
    let backends = all_backends(&CanonConfig::default());
    let kernels = polybench::suite(n);
    let mut columns = Vec::new();
    for cat in [Category::Blas, Category::Kernel, Category::Stencil] {
        // Geometric means of cycles and energy across the category, so the
        // normalized column behaves like the figures' per-category bars.
        let mut log_runs: Vec<Option<(f64, f64)>> = vec![Some((0.0, 0.0)); backends.len()];
        let mut log_useful = 0.0;
        let mut count = 0usize;
        for k in kernels.iter().filter(|k| k.category == cat) {
            let workload = Workload::Loop(LoopKernel { name: k.name, n });
            log_useful += (workload.useful_macs().max(1) as f64).ln();
            count += 1;
            for (i, b) in backends.iter().enumerate() {
                let run = b.run(&workload, 0).ok();
                log_runs[i] = match (log_runs[i], run) {
                    (Some((lc, le)), Some(r)) => Some((
                        lc + (r.cycles.max(1) as f64).ln(),
                        le + r.energy_pj.max(1.0).ln(),
                    )),
                    _ => None,
                };
            }
        }
        let nf = count.max(1) as f64;
        let runs: Vec<Option<ArchRun>> = log_runs
            .iter()
            .map(|acc| {
                acc.map(|(lc, le)| ArchRun {
                    cycles: (lc / nf).exp() as u64,
                    energy_pj: (le / nf).exp(),
                })
            })
            .collect();
        columns.push(Column {
            name: format!("PolyB-{cat}"),
            useful_macs: (log_useful / nf).exp() as u64,
            runs,
        });
    }
    columns
}

/// All 12 columns of Figs 12/13.
pub fn all_columns(scale: Scale) -> Vec<Column> {
    let mut cols = tensor_columns(scale);
    cols.extend(polybench_columns(scale));
    cols
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_columns_have_expected_shape() {
        let cols = all_columns(Scale::Smoke);
        assert_eq!(cols.len(), 12);
        for c in &cols {
            assert_eq!(c.runs.len(), 5);
            // Canon always present and normalized to exactly 1.
            let perf = c.norm_perf();
            assert_eq!(perf[4], Some(1.0), "{}", c.name);
            let pw = c.norm_perf_watt();
            assert!((pw[4].unwrap() - 1.0).abs() < 1e-9);
        }
        // PolyBench columns mark tensor accelerators unsupported.
        let polyb = &cols[9];
        assert!(polyb.runs[0].is_none() && polyb.runs[2].is_none());
    }

    #[test]
    fn fragility_shape_on_smoke() {
        let cols = tensor_columns(Scale::Smoke);
        let s3 = cols.iter().find(|c| c.name == "SpMM-S3").unwrap();
        let perf = s3.norm_perf();
        // Systolic clearly below Canon at high sparsity even at smoke sizes
        // (the gap widens to >3x at full scale); ZeD comparable.
        assert!(perf[0].unwrap() < 0.8, "systolic {:?}", perf[0]);
        assert!(perf[2].unwrap() > 0.5, "zed {:?}", perf[2]);
    }
}
