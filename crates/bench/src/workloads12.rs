//! The Fig 12/13 workload grid: 12 kernel columns × 5 architectures,
//! producing normalized performance and normalized perf/W in one pass.

use crate::Scale;
use canon_baselines::{Accelerator, BaselineRun, Cgra, SparseSystolic24, SystolicArray, ZedAccelerator};
use canon_core::kernels::nm::run_spmm_nm;
use canon_core::kernels::sddmm::{run_sddmm, ColPartition, SddmmMapping};
use canon_core::kernels::spmm::{run_spmm, SpmmMapping};
use canon_core::kernels::window::run_window_attention;
use canon_core::kernels::window::WindowAttention;
use canon_core::kernels::gemm::run_gemm;
use canon_core::stats::RunReport;
use canon_core::CanonConfig;
use canon_energy::{baseline_energy, canon_energy, canon_loop_energy, perf_per_watt, Arch};
use canon_loopir::mapping::{map_canon, map_cgra};
use canon_loopir::{polybench, Category};
use canon_sparse::{gen, Dense};

/// One architecture's absolute numbers on one workload.
#[derive(Debug, Clone, Copy)]
pub struct ArchRun {
    /// Cycles to complete the workload.
    pub cycles: u64,
    /// Total energy in pJ.
    pub energy_pj: f64,
}

/// One workload column: the common useful work plus per-architecture runs
/// (`None` = unsupported, the `X` of Figs 12/13).
#[derive(Debug, Clone)]
pub struct Column {
    /// Column label as in the figures.
    pub name: String,
    /// Useful scalar MACs/ops of the workload (identical across archs).
    pub useful_macs: u64,
    /// Runs in [`Arch::all`] order.
    pub runs: Vec<Option<ArchRun>>,
}

impl Column {
    fn canon(&self) -> ArchRun {
        self.runs[4].expect("Canon always runs its own workloads")
    }

    /// Performance of each architecture normalized to Canon.
    pub fn norm_perf(&self) -> Vec<Option<f64>> {
        let canon = self.canon();
        self.runs
            .iter()
            .map(|r| r.map(|r| canon.cycles as f64 / r.cycles.max(1) as f64))
            .collect()
    }

    /// Perf/W of each architecture normalized to Canon.
    pub fn norm_perf_watt(&self) -> Vec<Option<f64>> {
        let canon = self.canon();
        let base = perf_per_watt(self.useful_macs, canon.cycles, canon.energy_pj, 1e9);
        self.runs
            .iter()
            .map(|r| {
                r.map(|r| {
                    perf_per_watt(self.useful_macs, r.cycles, r.energy_pj, 1e9) / base
                })
            })
            .collect()
    }
}

fn canon_run(report: &RunReport) -> ArchRun {
    ArchRun {
        cycles: report.cycles,
        energy_pj: canon_energy(report).total_pj(),
    }
}

fn baseline(arch: Arch, run: Option<BaselineRun>) -> Option<ArchRun> {
    run.map(|r| ArchRun {
        cycles: r.cycles,
        energy_pj: baseline_energy(arch, &r).total_pj(),
    })
}

struct Baselines {
    sys: SystolicArray,
    s24: SparseSystolic24,
    zed: ZedAccelerator,
    cgra: Cgra,
}

impl Baselines {
    fn new() -> Baselines {
        Baselines {
            sys: SystolicArray::default(),
            s24: SparseSystolic24::default(),
            zed: ZedAccelerator::default(),
            cgra: Cgra::default(),
        }
    }
}

/// Builds the nine tensor-kernel columns of Figs 12/13 (everything except
/// the three PolyBench columns).
pub fn tensor_columns(scale: Scale) -> Vec<Column> {
    let cfg = CanonConfig::default();
    let b = Baselines::new();
    let mut columns = Vec::new();

    let m = scale.dim(256);
    let k = scale.dim(256);
    let n = scale.dim(128);

    // --- GEMM ---------------------------------------------------------
    {
        let mut rng = gen::seeded_rng(101);
        let a = Dense::random(m, k, &mut rng);
        let bm = Dense::random(k, n, &mut rng);
        let canon = run_gemm(&cfg, &a, &bm).expect("gemm maps");
        columns.push(Column {
            name: "GEMM".into(),
            useful_macs: (m * k * n) as u64,
            runs: vec![
                baseline(Arch::Systolic, b.sys.gemm(m, k, n)),
                baseline(Arch::Systolic24, b.s24.gemm(m, k, n)),
                baseline(Arch::Zed, b.zed.gemm(m, k, n)),
                baseline(Arch::Cgra, b.cgra.gemm(m, k, n)),
                Some(canon_run(&canon.report)),
            ],
        });
    }

    // --- SpMM-S1/S2/S3 ---------------------------------------------------
    for (band, sparsity, seed) in [("S1", 0.15, 102u64), ("S2", 0.45, 103), ("S3", 0.80, 104)] {
        let mut rng = gen::seeded_rng(seed);
        let a = gen::skewed_sparse(m, k, sparsity, 1.5, &mut rng);
        let bm = Dense::random(k, n, &mut rng);
        let canon = run_spmm(&cfg, &SpmmMapping::default(), &a, &bm).expect("spmm maps");
        columns.push(Column {
            name: format!("SpMM-{band}"),
            useful_macs: a.nnz() as u64 * n as u64,
            runs: vec![
                baseline(Arch::Systolic, b.sys.spmm(&a, n)),
                baseline(Arch::Systolic24, b.s24.spmm(&a, n)),
                baseline(Arch::Zed, b.zed.spmm(&a, n)),
                baseline(Arch::Cgra, b.cgra.spmm(&a, n)),
                Some(canon_run(&canon.report)),
            ],
        });
    }

    // --- SpMM-2:4 and SpMM-2:8 -------------------------------------------
    for (label, n_of, m_of, seed) in [("2:4", 2usize, 4usize, 105u64), ("2:8", 2, 8, 106)] {
        let mut rng = gen::seeded_rng(seed);
        let a = gen::nm_sparse(m, k, n_of, m_of, &mut rng);
        let bm = Dense::random(k, n, &mut rng);
        let canon = run_spmm_nm(&cfg, &a, &bm, n_of, m_of).expect("nm maps");
        columns.push(Column {
            name: format!("SpMM-{label}"),
            useful_macs: a.nnz() as u64 * n as u64,
            runs: vec![
                baseline(Arch::Systolic, b.sys.spmm_nm(&a, n, n_of, m_of)),
                baseline(Arch::Systolic24, b.s24.spmm_nm(&a, n, n_of, m_of)),
                baseline(Arch::Zed, b.zed.spmm_nm(&a, n, n_of, m_of)),
                baseline(Arch::Cgra, b.cgra.spmm_nm(&a, n, n_of, m_of)),
                Some(canon_run(&canon.report)),
            ],
        });
    }

    // --- SDDMM (unstructured) ---------------------------------------------
    {
        let seq = scale.dim(128);
        let head = 64;
        let mut rng = gen::seeded_rng(107);
        let q = Dense::random(seq, head, &mut rng);
        let kv = Dense::random(seq, head, &mut rng);
        let mask = gen::random_mask(seq, seq, 0.7, &mut rng);
        let canon = run_sddmm(&cfg, &SddmmMapping::default(), &mask, &q, &kv).expect("sddmm");
        columns.push(Column {
            name: "SDDMM".into(),
            useful_macs: mask.nnz() as u64 * head as u64,
            runs: vec![
                baseline(Arch::Systolic, b.sys.sddmm(&mask, head)),
                baseline(Arch::Systolic24, b.s24.sddmm(&mask, head)),
                baseline(Arch::Zed, b.zed.sddmm(&mask, head)),
                baseline(Arch::Cgra, b.cgra.sddmm(&mask, head)),
                Some(canon_run(&canon.report)),
            ],
        });
    }

    // --- SDDMM-Win1 / Win2 -------------------------------------------------
    // Win1 = Longformer ratios (window = seq/8, head 64);
    // Win2 = Mistral ratios (window = seq/4, head 128, longer context).
    let win_cfgs = [
        ("SDDMM-Win1", WindowAttention {
            seq: scale.dim(256),
            window: scale.dim(256) / 8,
            head_dim: 64,
        }),
        ("SDDMM-Win2", WindowAttention {
            seq: scale.dim(512),
            window: scale.dim(512) / 4,
            head_dim: 128,
        }),
    ];
    for (label, wa) in win_cfgs {
        let canon =
            run_window_attention(&cfg, &SddmmMapping::default(), &wa, 108).expect("window");
        let band = gen::window_mask(wa.seq, wa.window).nnz() as u64 * wa.head_dim as u64;
        columns.push(Column {
            name: label.into(),
            useful_macs: band,
            runs: vec![
                baseline(
                    Arch::Systolic,
                    b.sys.window_attention(wa.seq, wa.window, wa.head_dim),
                ),
                baseline(
                    Arch::Systolic24,
                    b.s24.window_attention(wa.seq, wa.window, wa.head_dim),
                ),
                baseline(
                    Arch::Zed,
                    b.zed.window_attention(wa.seq, wa.window, wa.head_dim),
                ),
                baseline(
                    Arch::Cgra,
                    b.cgra.window_attention(wa.seq, wa.window, wa.head_dim),
                ),
                Some(canon_run(&canon.report)),
            ],
        });
    }
    let _ = ColPartition::Cyclic; // window runs select cyclic internally
    columns
}

/// The three PolyBench columns: geometric means over each category, Canon vs
/// CGRA (the other baselines cannot run arbitrary loop nests → `X`).
pub fn polybench_columns(scale: Scale) -> Vec<Column> {
    let n = scale.dim(64);
    let kernels = polybench::suite(n);
    let cgra = Cgra::default();
    let mut columns = Vec::new();
    for cat in [Category::Blas, Category::Kernel, Category::Stencil] {
        // Geometric means of cycles and energy across the category, so the
        // normalized column behaves like the figures' per-category bars.
        let mut log_canon_cyc = 0.0;
        let mut log_cgra_cyc = 0.0;
        let mut log_canon_e = 0.0;
        let mut log_cgra_e = 0.0;
        let mut log_useful = 0.0;
        let mut count = 0usize;
        for k in kernels.iter().filter(|k| k.category == cat) {
            let c = map_canon(k, 8, 8, 4);
            let g = map_cgra(k, &cgra);
            log_canon_cyc += (c.cycles.max(1) as f64).ln();
            log_cgra_cyc += (g.cycles.max(1) as f64).ln();
            log_canon_e +=
                canon_loop_energy(c.cycles, c.lane_instrs, c.useful_ops).total_pj().max(1.0).ln();
            log_cgra_e += baseline_energy(Arch::Cgra, &g).total_pj().max(1.0).ln();
            log_useful += (c.useful_ops.max(1) as f64).ln();
            count += 1;
        }
        let nf = count.max(1) as f64;
        let canon = ArchRun {
            cycles: (log_canon_cyc / nf).exp() as u64,
            energy_pj: (log_canon_e / nf).exp(),
        };
        let cgra_run = ArchRun {
            cycles: (log_cgra_cyc / nf).exp() as u64,
            energy_pj: (log_cgra_e / nf).exp(),
        };
        columns.push(Column {
            name: format!("PolyB-{cat}"),
            useful_macs: (log_useful / nf).exp() as u64,
            runs: vec![None, None, None, Some(cgra_run), Some(canon)],
        });
    }
    columns
}

/// All 12 columns of Figs 12/13.
pub fn all_columns(scale: Scale) -> Vec<Column> {
    let mut cols = tensor_columns(scale);
    cols.extend(polybench_columns(scale));
    cols
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_columns_have_expected_shape() {
        let cols = all_columns(Scale::Smoke);
        assert_eq!(cols.len(), 12);
        for c in &cols {
            assert_eq!(c.runs.len(), 5);
            // Canon always present and normalized to exactly 1.
            let perf = c.norm_perf();
            assert_eq!(perf[4], Some(1.0), "{}", c.name);
            let pw = c.norm_perf_watt();
            assert!((pw[4].unwrap() - 1.0).abs() < 1e-9);
        }
        // PolyBench columns mark tensor accelerators unsupported.
        let polyb = &cols[9];
        assert!(polyb.runs[0].is_none() && polyb.runs[2].is_none());
    }

    #[test]
    fn fragility_shape_on_smoke() {
        let cols = tensor_columns(Scale::Smoke);
        let s3 = cols.iter().find(|c| c.name == "SpMM-S3").unwrap();
        let perf = s3.norm_perf();
        // Systolic clearly below Canon at high sparsity even at smoke sizes
        // (the gap widens to >3x at full scale); ZeD comparable.
        assert!(perf[0].unwrap() < 0.8, "systolic {:?}", perf[0]);
        assert!(perf[2].unwrap() > 0.5, "zed {:?}", perf[2]);
    }
}
