//! Binary output masks for SDDMM.

use crate::{Dense, SparseError};

/// A binary mask over an `rows`×`cols` output space.
///
/// SDDMM computes `C = M · (A × B)`: the mask `M` restricts which output
/// positions are computed (§4.1.2). Masks can be unstructured (from attention
/// sparsification) or structured (sliding-window attention, §4.1.3).
///
/// # Examples
///
/// ```
/// use canon_sparse::Mask;
/// let m = Mask::window(6, 6, 1); // tridiagonal band
/// assert!(m.get(2, 2) && m.get(2, 3) && !m.get(2, 4));
/// assert_eq!(m.row_nnz(0), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mask {
    rows: usize,
    cols: usize,
    bits: Vec<bool>,
}

impl Mask {
    /// All-zero mask (nothing computed).
    pub fn empty(rows: usize, cols: usize) -> Self {
        Mask {
            rows,
            cols,
            bits: vec![false; rows * cols],
        }
    }

    /// All-ones mask (dense output).
    pub fn full(rows: usize, cols: usize) -> Self {
        Mask {
            rows,
            cols,
            bits: vec![true; rows * cols],
        }
    }

    /// Builds a mask from a boolean vector in row-major order.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if the length is wrong.
    pub fn from_bits(rows: usize, cols: usize, bits: Vec<bool>) -> Result<Self, SparseError> {
        if bits.len() != rows * cols {
            return Err(SparseError::DimensionMismatch {
                context: format!("{} bits for {rows}x{cols} mask", bits.len()),
            });
        }
        Ok(Mask { rows, cols, bits })
    }

    /// Sliding-window (banded) mask: position `(i, j)` is set iff
    /// `|i - j| <= half_width`. This is the diagonal window pattern used by
    /// Longformer/Mistral-style attention (SDDMM-Win1/Win2 in the paper).
    pub fn window(rows: usize, cols: usize, half_width: usize) -> Self {
        let mut m = Mask::empty(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                if i.abs_diff(j) <= half_width {
                    m.set(i, j, true);
                }
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads bit `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn get(&self, r: usize, c: usize) -> bool {
        assert!(r < self.rows && c < self.cols, "mask index out of bounds");
        self.bits[r * self.cols + c]
    }

    /// Sets bit `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: bool) {
        assert!(r < self.rows && c < self.cols, "mask index out of bounds");
        self.bits[r * self.cols + c] = v;
    }

    /// Number of set bits.
    pub fn nnz(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Number of set bits in row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_nnz(&self, r: usize) -> usize {
        assert!(r < self.rows, "mask row out of bounds");
        self.bits[r * self.cols..(r + 1) * self.cols]
            .iter()
            .filter(|&&b| b)
            .count()
    }

    /// Fraction of unset bits, in `[0, 1]`.
    pub fn sparsity(&self) -> f64 {
        if self.bits.is_empty() {
            return 0.0;
        }
        1.0 - self.nnz() as f64 / self.bits.len() as f64
    }

    /// Iterates over the set positions of row `r` in column order.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_iter(&self, r: usize) -> impl Iterator<Item = usize> + '_ {
        assert!(r < self.rows, "mask row out of bounds");
        let base = r * self.cols;
        (0..self.cols).filter(move |&c| self.bits[base + c])
    }

    /// Applies the mask to a dense matrix, zeroing unmasked entries.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if shapes differ.
    pub fn apply(&self, d: &Dense) -> Result<Dense, SparseError> {
        if d.rows() != self.rows || d.cols() != self.cols {
            return Err(SparseError::DimensionMismatch {
                context: format!(
                    "mask {}x{} vs matrix {}x{}",
                    self.rows,
                    self.cols,
                    d.rows(),
                    d.cols()
                ),
            });
        }
        let mut out = Dense::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for c in self.row_iter(r) {
                out[(r, c)] = d[(r, c)];
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_band_shape() {
        let m = Mask::window(5, 5, 1);
        assert!(m.get(0, 0) && m.get(0, 1) && !m.get(0, 2));
        assert!(m.get(4, 3) && !m.get(4, 2));
        assert_eq!(m.nnz(), 5 + 4 + 4);
    }

    #[test]
    fn window_zero_width_is_diagonal() {
        let m = Mask::window(4, 4, 0);
        assert_eq!(m.nnz(), 4);
        for i in 0..4 {
            assert!(m.get(i, i));
        }
    }

    #[test]
    fn full_and_empty() {
        assert_eq!(Mask::full(3, 3).nnz(), 9);
        assert_eq!(Mask::empty(3, 3).nnz(), 0);
        assert!((Mask::empty(3, 3).sparsity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_bits_validates() {
        assert!(Mask::from_bits(2, 2, vec![true; 3]).is_err());
        let m = Mask::from_bits(1, 2, vec![true, false]).unwrap();
        assert_eq!(m.row_nnz(0), 1);
    }

    #[test]
    fn apply_zeroes_unmasked() {
        let d = Dense::from_rows(&[vec![1, 2], vec![3, 4]]);
        let mut m = Mask::empty(2, 2);
        m.set(0, 1, true);
        let out = m.apply(&d).unwrap();
        assert_eq!(out, Dense::from_rows(&[vec![0, 2], vec![0, 0]]));
        assert!(m.apply(&Dense::zeros(1, 1)).is_err());
    }

    #[test]
    fn row_iter_matches_get() {
        let m = Mask::window(6, 6, 2);
        for r in 0..6 {
            let from_iter: Vec<usize> = m.row_iter(r).collect();
            let from_get: Vec<usize> = (0..6).filter(|&c| m.get(r, c)).collect();
            assert_eq!(from_iter, from_get);
        }
    }
}
