//! Workload statistics used by the evaluation harness.

use crate::{CsrMatrix, Mask};

/// Summary statistics of the non-zero distribution of a sparse operand.
///
/// Row-level imbalance (`max / mean`) is the property that drives Canon's
/// dynamic load balancing, and arithmetic intensity drives the bandwidth
/// experiments (Figs 15, 16).
#[derive(Debug, Clone, PartialEq)]
pub struct NnzStats {
    /// Total non-zeros.
    pub nnz: usize,
    /// Mean non-zeros per row.
    pub mean_row_nnz: f64,
    /// Maximum non-zeros in any row.
    pub max_row_nnz: usize,
    /// Minimum non-zeros in any row.
    pub min_row_nnz: usize,
    /// Population standard deviation of per-row nnz.
    pub stddev_row_nnz: f64,
    /// Overall sparsity in `[0, 1]`.
    pub sparsity: f64,
}

impl NnzStats {
    /// Computes statistics for a CSR matrix.
    pub fn of(m: &CsrMatrix) -> Self {
        let nnzs: Vec<usize> = (0..m.rows()).map(|r| m.row_nnz(r)).collect();
        Self::from_row_nnzs(&nnzs, m.rows() * m.cols())
    }

    /// Computes statistics for an SDDMM mask.
    pub fn of_mask(m: &Mask) -> Self {
        let nnzs: Vec<usize> = (0..m.rows()).map(|r| m.row_nnz(r)).collect();
        Self::from_row_nnzs(&nnzs, m.rows() * m.cols())
    }

    fn from_row_nnzs(nnzs: &[usize], total_entries: usize) -> Self {
        let nnz: usize = nnzs.iter().sum();
        let n = nnzs.len().max(1) as f64;
        let mean = nnz as f64 / n;
        let var = nnzs
            .iter()
            .map(|&x| {
                let d = x as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        NnzStats {
            nnz,
            mean_row_nnz: mean,
            max_row_nnz: nnzs.iter().copied().max().unwrap_or(0),
            min_row_nnz: nnzs.iter().copied().min().unwrap_or(0),
            stddev_row_nnz: var.sqrt(),
            sparsity: if total_entries == 0 {
                0.0
            } else {
                1.0 - nnz as f64 / total_entries as f64
            },
        }
    }

    /// Load-imbalance factor: `max_row_nnz / mean_row_nnz` (1.0 = balanced).
    /// Returns 1.0 for empty matrices.
    pub fn imbalance(&self) -> f64 {
        if self.mean_row_nnz == 0.0 {
            1.0
        } else {
            self.max_row_nnz as f64 / self.mean_row_nnz
        }
    }
}

/// Theoretical arithmetic intensity of SpMM in MAC operations per input
/// element touched, as used for the x-axes of Figs 15 and 16.
///
/// Each non-zero `a[m][k]` contributes `N` MACs; the data touched is the
/// non-zeros of `A` (value + coordinate), the dense `B` (`K×N`), and the
/// output (`M×N`).
pub fn spmm_arithmetic_intensity(
    m: usize,
    k: usize,
    n: usize,
    nnz: usize,
    bytes_per_elem: usize,
) -> f64 {
    let ops = nnz as f64 * n as f64;
    // Coordinates cost roughly one extra element per nnz.
    let elems = 2.0 * nnz as f64 + (k * n) as f64 + (m * n) as f64;
    let bytes = elems * bytes_per_elem as f64;
    if bytes == 0.0 {
        0.0
    } else {
        ops / bytes * bytes_per_elem as f64 // ops per element, normalised
    }
}

/// Arithmetic intensity in operations per *byte* (for the bandwidth roofline
/// of Fig 16): MACs count as 2 ops (multiply + add).
pub fn spmm_ops_per_byte(m: usize, k: usize, n: usize, nnz: usize, bytes_per_elem: usize) -> f64 {
    let ops = 2.0 * nnz as f64 * n as f64;
    let elems = 2.0 * nnz as f64 + (k * n) as f64 + (m * n) as f64;
    let bytes = elems * bytes_per_elem as f64;
    if bytes == 0.0 {
        0.0
    } else {
        ops / bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{random_sparse, seeded_rng, skewed_sparse};
    use crate::Dense;
    use crate::Mask;

    #[test]
    fn stats_of_uniform_matrix() {
        let mut rng = seeded_rng(1);
        let m = random_sparse(100, 100, 0.5, &mut rng);
        let s = NnzStats::of(&m);
        assert_eq!(s.nnz, m.nnz());
        assert!((s.sparsity - 0.5).abs() < 0.05);
        assert!(s.imbalance() < 1.8, "uniform matrix should be balanced");
    }

    #[test]
    fn stats_of_skewed_matrix_show_imbalance() {
        let mut rng = seeded_rng(2);
        let uniform = NnzStats::of(&random_sparse(128, 128, 0.7, &mut rng));
        let skewed = NnzStats::of(&skewed_sparse(128, 128, 0.7, 3.0, &mut rng));
        assert!(
            skewed.stddev_row_nnz > uniform.stddev_row_nnz,
            "skewed stddev {} should exceed uniform {}",
            skewed.stddev_row_nnz,
            uniform.stddev_row_nnz
        );
    }

    #[test]
    fn stats_of_empty() {
        let m = crate::CsrMatrix::from_dense(&Dense::zeros(4, 4));
        let s = NnzStats::of(&m);
        assert_eq!(s.nnz, 0);
        assert_eq!(s.imbalance(), 1.0);
        assert_eq!(s.max_row_nnz, 0);
    }

    #[test]
    fn mask_stats() {
        let m = Mask::window(8, 8, 1);
        let s = NnzStats::of_mask(&m);
        assert_eq!(s.max_row_nnz, 3);
        assert_eq!(s.min_row_nnz, 2);
    }

    #[test]
    fn intensity_monotone_in_density() {
        let sparse = spmm_ops_per_byte(256, 256, 256, 3000, 1);
        let denser = spmm_ops_per_byte(256, 256, 256, 30000, 1);
        assert!(denser > sparse);
    }

    #[test]
    fn intensity_zero_for_empty() {
        assert_eq!(spmm_ops_per_byte(0, 0, 0, 0, 1), 0.0);
        assert_eq!(spmm_arithmetic_intensity(0, 0, 0, 0, 1), 0.0);
    }
}
