//! Compressed sparse row (CSR) matrix.

use crate::{CooMatrix, Dense, SparseError, Value};

/// A sparse matrix in compressed sparse row form.
///
/// CSR is the canonical streaming format for Canon's SpMM mapping: the
/// non-zeros of a row segment are streamed to a row orchestrator in order,
/// terminated by a row-end token (see `canon-core::kernels::spmm`).
///
/// Invariants (checked by [`CsrMatrix::new`]):
/// * `row_ptr.len() == rows + 1`, `row_ptr[0] == 0`,
///   `row_ptr[rows] == col_idx.len() == values.len()`;
/// * `row_ptr` is non-decreasing;
/// * column indices within each row are strictly increasing and `< cols`.
///
/// # Examples
///
/// ```
/// use canon_sparse::{CsrMatrix, Dense};
/// let d = Dense::from_rows(&[vec![0, 2], vec![3, 0]]);
/// let m = CsrMatrix::from_dense(&d);
/// assert_eq!(m.nnz(), 2);
/// assert_eq!(m.to_dense(), d);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<Value>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from raw arrays, validating the invariants above.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidStructure`] when any invariant is
    /// violated, and [`SparseError::OutOfBounds`] when a column index exceeds
    /// `cols`.
    pub fn new(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<Value>,
    ) -> Result<Self, SparseError> {
        if row_ptr.len() != rows + 1 {
            return Err(SparseError::InvalidStructure {
                reason: format!(
                    "row_ptr length {} != rows + 1 = {}",
                    row_ptr.len(),
                    rows + 1
                ),
            });
        }
        if row_ptr[0] != 0 {
            return Err(SparseError::InvalidStructure {
                reason: "row_ptr[0] must be 0".into(),
            });
        }
        if col_idx.len() != values.len() {
            return Err(SparseError::InvalidStructure {
                reason: format!(
                    "col_idx length {} != values length {}",
                    col_idx.len(),
                    values.len()
                ),
            });
        }
        if *row_ptr.last().expect("non-empty row_ptr") != col_idx.len() {
            return Err(SparseError::InvalidStructure {
                reason: format!(
                    "row_ptr[rows] = {} != nnz = {}",
                    row_ptr[rows],
                    col_idx.len()
                ),
            });
        }
        for r in 0..rows {
            if row_ptr[r] > row_ptr[r + 1] {
                return Err(SparseError::InvalidStructure {
                    reason: format!("row_ptr not monotone at row {r}"),
                });
            }
            let mut prev: Option<usize> = None;
            for k in row_ptr[r]..row_ptr[r + 1] {
                let c = col_idx[k];
                if c >= cols {
                    return Err(SparseError::OutOfBounds {
                        row: r,
                        col: c,
                        rows,
                        cols,
                    });
                }
                if let Some(p) = prev {
                    if c <= p {
                        return Err(SparseError::InvalidStructure {
                            reason: format!(
                                "column indices not strictly increasing in row {r}: {p} then {c}"
                            ),
                        });
                    }
                }
                prev = Some(c);
            }
        }
        Ok(CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Converts a dense matrix to CSR, dropping explicit zeros.
    pub fn from_dense(d: &Dense) -> Self {
        let mut row_ptr = Vec::with_capacity(d.rows() + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..d.rows() {
            for (c, &v) in d.row(r).iter().enumerate() {
                if v != 0 {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            rows: d.rows(),
            cols: d.cols(),
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Materialises the matrix as dense storage.
    pub fn to_dense(&self) -> Dense {
        let mut d = Dense::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row_iter(r) {
                d[(r, c)] = v;
            }
        }
        d
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Number of non-zeros in row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_nnz(&self, r: usize) -> usize {
        assert!(r < self.rows, "row {r} out of bounds");
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// Fraction of entries that are zero.
    pub fn sparsity(&self) -> f64 {
        let total = self.rows * self.cols;
        if total == 0 {
            return 0.0;
        }
        1.0 - self.nnz() as f64 / total as f64
    }

    /// Iterates over `(col, value)` pairs of row `r` in column order.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_iter(&self, r: usize) -> impl Iterator<Item = (usize, Value)> + '_ {
        assert!(r < self.rows, "row {r} out of bounds");
        let span = self.row_ptr[r]..self.row_ptr[r + 1];
        span.map(move |k| (self.col_idx[k], self.values[k]))
    }

    /// Iterates over all `(row, col, value)` triplets in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, Value)> + '_ {
        (0..self.rows).flat_map(move |r| self.row_iter(r).map(move |(c, v)| (r, c, v)))
    }

    /// Extracts the sub-matrix of columns `[col_start, col_end)` as a new CSR
    /// matrix with `col_end - col_start` columns.
    ///
    /// Used by the kernel mappers to slice the streamed operand per PE-row
    /// (the K dimension is spatially partitioned across rows in the SpMM
    /// dataflow of Fig 7a).
    ///
    /// # Panics
    ///
    /// Panics if `col_start > col_end` or `col_end > self.cols()`.
    pub fn column_slice(&self, col_start: usize, col_end: usize) -> CsrMatrix {
        assert!(col_start <= col_end && col_end <= self.cols);
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..self.rows {
            for (c, v) in self.row_iter(r) {
                if c >= col_start && c < col_end {
                    col_idx.push(c - col_start);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            rows: self.rows,
            cols: col_end - col_start,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Raw row-pointer array (`rows + 1` entries).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Raw column-index array (`nnz` entries).
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Raw values array (`nnz` entries).
    pub fn values(&self) -> &[Value] {
        &self.values
    }
}

impl From<&CooMatrix> for CsrMatrix {
    fn from(coo: &CooMatrix) -> Self {
        let mut triplets: Vec<(usize, usize, Value)> = coo.iter().collect();
        triplets.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut row_ptr = Vec::with_capacity(coo.rows() + 1);
        let mut col_idx = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        row_ptr.push(0);
        let mut next_row = 0;
        for (r, c, v) in triplets {
            while next_row <= r {
                row_ptr.push(col_idx.len());
                next_row += 1;
            }
            // `row_ptr` currently has entries up to row r inclusive; fix up
            // the last entry after pushing.
            col_idx.push(c);
            values.push(v);
            *row_ptr.last_mut().expect("non-empty") = col_idx.len();
        }
        while next_row < coo.rows() {
            row_ptr.push(col_idx.len());
            next_row += 1;
        }
        if row_ptr.len() < coo.rows() + 1 {
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            rows: coo.rows(),
            cols: coo.cols(),
            row_ptr,
            col_idx,
            values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{random_sparse, seeded_rng};

    #[test]
    fn dense_roundtrip() {
        let d = Dense::from_rows(&[vec![0, 1, 0], vec![2, 0, 3], vec![0, 0, 0]]);
        let m = CsrMatrix::from_dense(&d);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.row_nnz(0), 1);
        assert_eq!(m.row_nnz(2), 0);
        assert_eq!(m.to_dense(), d);
    }

    #[test]
    fn new_validates_invariants() {
        // Wrong row_ptr length.
        assert!(CsrMatrix::new(2, 2, vec![0, 1], vec![0], vec![1]).is_err());
        // Non-zero start.
        assert!(CsrMatrix::new(1, 2, vec![1, 1], vec![], vec![]).is_err());
        // Column out of bounds.
        assert!(matches!(
            CsrMatrix::new(1, 2, vec![0, 1], vec![2], vec![1]),
            Err(SparseError::OutOfBounds { .. })
        ));
        // Duplicate column in a row.
        assert!(CsrMatrix::new(1, 3, vec![0, 2], vec![1, 1], vec![1, 1]).is_err());
        // Valid.
        let m = CsrMatrix::new(2, 3, vec![0, 2, 3], vec![0, 2, 1], vec![5, 6, 7]).unwrap();
        assert_eq!(m.to_dense()[(1, 1)], 7);
    }

    #[test]
    fn row_iter_in_column_order() {
        let d = Dense::from_rows(&[vec![4, 0, 6, 7]]);
        let m = CsrMatrix::from_dense(&d);
        let row: Vec<_> = m.row_iter(0).collect();
        assert_eq!(row, vec![(0, 4), (2, 6), (3, 7)]);
    }

    #[test]
    fn column_slice_partitions_nnz() {
        let mut rng = seeded_rng(11);
        let m = random_sparse(20, 24, 0.6, &mut rng);
        let left = m.column_slice(0, 12);
        let right = m.column_slice(12, 24);
        assert_eq!(left.nnz() + right.nnz(), m.nnz());
        assert_eq!(left.cols(), 12);
        // Reassemble and compare.
        let mut d = Dense::zeros(20, 24);
        for (r, c, v) in left.iter() {
            d[(r, c)] = v;
        }
        for (r, c, v) in right.iter() {
            d[(r, c + 12)] = v;
        }
        assert_eq!(d, m.to_dense());
    }

    #[test]
    fn from_coo_matches_dense_path() {
        let mut rng = seeded_rng(5);
        let m = random_sparse(13, 9, 0.5, &mut rng);
        let coo = CooMatrix::from(&m);
        let back = CsrMatrix::from(&coo);
        assert_eq!(back, m);
    }

    #[test]
    fn sparsity_of_empty_and_full() {
        let empty = CsrMatrix::from_dense(&Dense::zeros(4, 4));
        assert_eq!(empty.nnz(), 0);
        assert!((empty.sparsity() - 1.0).abs() < 1e-12);
        let mut rng = seeded_rng(2);
        let full = CsrMatrix::from_dense(&Dense::random(4, 4, &mut rng));
        assert!((full.sparsity() - 0.0).abs() < 1e-12);
    }
}
