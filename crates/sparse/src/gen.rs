//! Sparsity generators for the evaluation workloads.
//!
//! The paper buckets inputs into three sparsity ranges — S1 (0–30%), S2
//! (30–60%), S3 (60–95%) — and additionally evaluates N:M structured sparsity
//! and sliding-window masks. These generators produce all of those patterns
//! deterministically from a seeded RNG so experiments are reproducible.

use crate::{CsrMatrix, Dense, Mask, Value};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Sparsity band used throughout the evaluation (§5 "Workloads").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SparsityBand {
    /// Relatively dense: 0–30% of entries are zero.
    S1,
    /// Moderately sparse: 30–60%.
    S2,
    /// Highly sparse: 60–95%.
    S3,
}

impl SparsityBand {
    /// A representative sparsity for the band (its midpoint).
    pub fn representative(self) -> f64 {
        match self {
            SparsityBand::S1 => 0.15,
            SparsityBand::S2 => 0.45,
            SparsityBand::S3 => 0.80,
        }
    }

    /// The `[low, high)` sparsity interval of the band.
    pub fn range(self) -> (f64, f64) {
        match self {
            SparsityBand::S1 => (0.0, 0.30),
            SparsityBand::S2 => (0.30, 0.60),
            SparsityBand::S3 => (0.60, 0.95),
        }
    }

    /// All bands in order.
    pub fn all() -> [SparsityBand; 3] {
        [SparsityBand::S1, SparsityBand::S2, SparsityBand::S3]
    }
}

impl std::fmt::Display for SparsityBand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SparsityBand::S1 => write!(f, "S1"),
            SparsityBand::S2 => write!(f, "S2"),
            SparsityBand::S3 => write!(f, "S3"),
        }
    }
}

/// Creates a deterministic RNG from a seed; the single entry point for
/// randomness in the workspace so experiments replay exactly.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

fn nonzero_value<R: Rng>(rng: &mut R) -> Value {
    let v: Value = rng.gen_range(-4..4);
    if v >= 0 {
        v + 1
    } else {
        v
    }
}

/// Generates an `rows`×`cols` matrix where each entry is zero with
/// probability `sparsity` (i.i.d. Bernoulli), returned in CSR form.
///
/// # Panics
///
/// Panics if `sparsity` is not in `[0, 1]`.
pub fn random_sparse<R: Rng>(rows: usize, cols: usize, sparsity: f64, rng: &mut R) -> CsrMatrix {
    assert!(
        (0.0..=1.0).contains(&sparsity),
        "sparsity must be in [0,1], got {sparsity}"
    );
    let mut d = Dense::zeros(rows, cols);
    for r in 0..rows {
        for c in 0..cols {
            if rng.gen_bool(1.0 - sparsity) {
                d[(r, c)] = nonzero_value(rng);
            }
        }
    }
    CsrMatrix::from_dense(&d)
}

/// Generates a sparse matrix whose *row* densities are skewed: row `r` keeps
/// a fraction of entries drawn from a truncated geometric-like distribution
/// controlled by `skew` (0 = uniform, larger = more imbalance), with mean
/// density `1 - sparsity`.
///
/// Uneven non-zero distribution across rows is exactly the load-imbalance
/// condition the Canon scratchpad buffering targets (§4.1.1, Fig 17), so the
/// Fig 17 experiment uses this generator.
///
/// # Panics
///
/// Panics if `sparsity` is not in `[0, 1]` or `skew < 0`.
pub fn skewed_sparse<R: Rng>(
    rows: usize,
    cols: usize,
    sparsity: f64,
    skew: f64,
    rng: &mut R,
) -> CsrMatrix {
    assert!((0.0..=1.0).contains(&sparsity), "sparsity in [0,1]");
    assert!(skew >= 0.0, "skew must be non-negative");
    let mean_density = 1.0 - sparsity;
    let mut d = Dense::zeros(rows, cols);
    for r in 0..rows {
        // Multiplier in [1/(1+skew), 1+skew], log-uniform, then clamped so the
        // per-row density stays a probability.
        let lo = (1.0 / (1.0 + skew)).ln();
        let hi = (1.0 + skew).ln();
        let mult = if skew == 0.0 {
            1.0
        } else {
            rng.gen_range(lo..=hi).exp()
        };
        let density = (mean_density * mult).clamp(0.0, 1.0);
        for c in 0..cols {
            if rng.gen_bool(density) {
                d[(r, c)] = nonzero_value(rng);
            }
        }
    }
    CsrMatrix::from_dense(&d)
}

/// Generates an N:M structured sparse matrix: in every aligned group of `m`
/// consecutive entries of a row, exactly `n` are non-zero (positions chosen
/// randomly). 2:4 reproduces the NVIDIA sparse-tensor-core pattern; Canon
/// supports any N:M (§4.1.3).
///
/// # Panics
///
/// Panics if `n > m`, `m == 0`, or `cols % m != 0`.
pub fn nm_sparse<R: Rng>(rows: usize, cols: usize, n: usize, m: usize, rng: &mut R) -> CsrMatrix {
    assert!(m > 0 && n <= m, "need 0 <= n <= m, m > 0");
    assert!(
        cols.is_multiple_of(m),
        "cols ({cols}) must be a multiple of m ({m})"
    );
    let mut d = Dense::zeros(rows, cols);
    let mut positions: Vec<usize> = (0..m).collect();
    for r in 0..rows {
        for g in 0..cols / m {
            positions.shuffle(rng);
            for &p in positions.iter().take(n) {
                d[(r, g * m + p)] = nonzero_value(rng);
            }
        }
    }
    CsrMatrix::from_dense(&d)
}

/// Generates an unstructured attention-style mask with the given output
/// sparsity (used for SDDMM-U workloads).
///
/// # Panics
///
/// Panics if `sparsity` is not in `[0, 1]`.
pub fn random_mask<R: Rng>(rows: usize, cols: usize, sparsity: f64, rng: &mut R) -> Mask {
    assert!((0.0..=1.0).contains(&sparsity), "sparsity in [0,1]");
    let mut m = Mask::empty(rows, cols);
    for r in 0..rows {
        for c in 0..cols {
            if rng.gen_bool(1.0 - sparsity) {
                m.set(r, c, true);
            }
        }
    }
    m
}

/// Sliding-window attention mask for a sequence of length `seq` with window
/// width `window` (total band width, as in Longformer's "window width 512"):
/// position `(i, j)` is set iff `|i - j| <= window / 2`.
pub fn window_mask(seq: usize, window: usize) -> Mask {
    Mask::window(seq, seq, window / 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bands_cover_expected_ranges() {
        for band in SparsityBand::all() {
            let (lo, hi) = band.range();
            let rep = band.representative();
            assert!(rep >= lo && rep < hi, "{band}: {rep} not in [{lo},{hi})");
        }
        assert_eq!(SparsityBand::S2.to_string(), "S2");
    }

    #[test]
    fn random_sparse_hits_target_sparsity() {
        let mut rng = seeded_rng(42);
        let m = random_sparse(200, 200, 0.7, &mut rng);
        let actual = m.sparsity();
        assert!(
            (actual - 0.7).abs() < 0.03,
            "sparsity {actual} far from 0.7"
        );
    }

    #[test]
    fn random_sparse_extremes() {
        let mut rng = seeded_rng(1);
        assert_eq!(random_sparse(10, 10, 1.0, &mut rng).nnz(), 0);
        assert_eq!(random_sparse(10, 10, 0.0, &mut rng).nnz(), 100);
    }

    #[test]
    fn seeded_rng_is_deterministic() {
        let a = random_sparse(16, 16, 0.5, &mut seeded_rng(7));
        let b = random_sparse(16, 16, 0.5, &mut seeded_rng(7));
        assert_eq!(a, b);
    }

    #[test]
    fn nm_sparse_exact_group_counts() {
        let mut rng = seeded_rng(3);
        let m = nm_sparse(32, 64, 2, 4, &mut rng);
        let d = m.to_dense();
        for r in 0..32 {
            for g in 0..64 / 4 {
                let nnz = (0..4).filter(|&p| d[(r, g * 4 + p)] != 0).count();
                assert_eq!(nnz, 2, "group ({r},{g}) has {nnz} nnz, want 2");
            }
        }
        // Overall sparsity is exactly 50%.
        assert!((m.sparsity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn nm_sparse_2_of_8() {
        let mut rng = seeded_rng(4);
        let m = nm_sparse(8, 32, 2, 8, &mut rng);
        assert!((m.sparsity() - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "multiple of m")]
    fn nm_sparse_requires_divisible_cols() {
        let mut rng = seeded_rng(5);
        let _ = nm_sparse(4, 10, 2, 4, &mut rng);
    }

    #[test]
    fn skewed_sparse_mean_close_but_rows_vary() {
        let mut rng = seeded_rng(8);
        let m = skewed_sparse(128, 128, 0.6, 2.0, &mut rng);
        let s = m.sparsity();
        assert!((s - 0.6).abs() < 0.12, "mean sparsity {s} far from 0.6");
        let nnzs: Vec<usize> = (0..m.rows()).map(|r| m.row_nnz(r)).collect();
        let min = *nnzs.iter().min().unwrap();
        let max = *nnzs.iter().max().unwrap();
        assert!(max > min + 10, "rows should be imbalanced: {min}..{max}");
    }

    #[test]
    fn skewed_sparse_zero_skew_like_uniform() {
        let mut rng = seeded_rng(8);
        let m = skewed_sparse(64, 64, 0.5, 0.0, &mut rng);
        assert!((m.sparsity() - 0.5).abs() < 0.07);
    }

    #[test]
    fn random_mask_sparsity() {
        let mut rng = seeded_rng(9);
        let m = random_mask(100, 100, 0.9, &mut rng);
        assert!((m.sparsity() - 0.9).abs() < 0.03);
    }

    #[test]
    fn window_mask_band() {
        let m = window_mask(16, 4);
        assert!(m.get(8, 6) && m.get(8, 10) && !m.get(8, 5) && !m.get(8, 11));
    }
}
