//! Coordinate-list (COO) sparse matrix.

use crate::{CsrMatrix, Dense, SparseError, Value};

/// A sparse matrix stored as `(row, col, value)` triplets.
///
/// COO is convenient for incremental construction (e.g. the bottom-edge psum
/// collector in the Canon SpMM dataflow accumulates output fragments keyed by
/// row id before they are merged into the dense result).
///
/// # Examples
///
/// ```
/// use canon_sparse::CooMatrix;
/// let mut m = CooMatrix::new(2, 2);
/// m.push(0, 1, 5).unwrap();
/// m.push(0, 1, 2).unwrap(); // duplicates accumulate on conversion
/// assert_eq!(m.to_dense()[(0, 1)], 7);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, Value)>,
}

impl CooMatrix {
    /// Creates an empty `rows`×`cols` COO matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        CooMatrix {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Appends a triplet. Duplicate coordinates are allowed and are summed by
    /// [`CooMatrix::to_dense`] / conversion to CSR.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::OutOfBounds`] if the coordinate is outside the
    /// matrix.
    pub fn push(&mut self, row: usize, col: usize, value: Value) -> Result<(), SparseError> {
        if row >= self.rows || col >= self.cols {
            return Err(SparseError::OutOfBounds {
                row,
                col,
                rows: self.rows,
                cols: self.cols,
            });
        }
        self.entries.push((row, col, value));
        Ok(())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored triplets (duplicates counted separately).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no triplets are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over stored triplets in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, Value)> + '_ {
        self.entries.iter().copied()
    }

    /// Materialises as dense, accumulating duplicate coordinates.
    pub fn to_dense(&self) -> Dense {
        let mut d = Dense::zeros(self.rows, self.cols);
        for &(r, c, v) in &self.entries {
            d[(r, c)] += v;
        }
        d
    }
}

impl From<&CsrMatrix> for CooMatrix {
    fn from(csr: &CsrMatrix) -> Self {
        CooMatrix {
            rows: csr.rows(),
            cols: csr.cols(),
            entries: csr.iter().collect(),
        }
    }
}

impl From<&Dense> for CooMatrix {
    fn from(d: &Dense) -> Self {
        let mut m = CooMatrix::new(d.rows(), d.cols());
        for r in 0..d.rows() {
            for (c, &v) in d.row(r).iter().enumerate() {
                if v != 0 {
                    m.entries.push((r, c, v));
                }
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_validates_bounds() {
        let mut m = CooMatrix::new(2, 2);
        assert!(m.push(0, 0, 1).is_ok());
        assert!(m.push(2, 0, 1).is_err());
        assert!(m.push(0, 2, 1).is_err());
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn duplicates_accumulate() {
        let mut m = CooMatrix::new(1, 1);
        m.push(0, 0, 3).unwrap();
        m.push(0, 0, -1).unwrap();
        assert_eq!(m.to_dense()[(0, 0)], 2);
    }

    #[test]
    fn empty_roundtrip() {
        let m = CooMatrix::new(3, 3);
        assert!(m.is_empty());
        assert_eq!(m.to_dense(), Dense::zeros(3, 3));
    }

    #[test]
    fn csr_coo_roundtrip() {
        let d = Dense::from_rows(&[vec![1, 0], vec![0, 2]]);
        let csr = CsrMatrix::from_dense(&d);
        let coo = CooMatrix::from(&csr);
        assert_eq!(coo.len(), 2);
        assert_eq!(coo.to_dense(), d);
    }

    #[test]
    fn dense_to_coo_skips_zeros() {
        let d = Dense::from_rows(&[vec![0, 5]]);
        let coo = CooMatrix::from(&d);
        assert_eq!(coo.len(), 1);
        assert_eq!(coo.iter().next(), Some((0, 1, 5)));
    }
}
