//! Golden reference kernels.
//!
//! Every accelerator simulator in this workspace (Canon and all baselines) is
//! validated against these straightforward implementations. All arithmetic is
//! `i32`, so comparisons are bit-exact.

use crate::{CsrMatrix, Dense, Mask, Value};

/// Dense matrix multiplication `C = A × B`.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn gemm(a: &Dense, b: &Dense) -> Dense {
    assert_eq!(
        a.cols(),
        b.rows(),
        "gemm: a is {}x{}, b is {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let mut c = Dense::zeros(a.rows(), b.cols());
    for m in 0..a.rows() {
        for k in 0..a.cols() {
            let av = a[(m, k)];
            if av == 0 {
                continue;
            }
            for n in 0..b.cols() {
                c[(m, n)] += av * b[(k, n)];
            }
        }
    }
    c
}

/// Sparse × dense matrix multiplication `C = A × B` with `A` in CSR
/// (Gustavson's row-wise formulation, the dataflow Canon's SpMM mapping is
/// derived from).
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn spmm(a: &CsrMatrix, b: &Dense) -> Dense {
    assert_eq!(
        a.cols(),
        b.rows(),
        "spmm: a is {}x{}, b is {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let mut c = Dense::zeros(a.rows(), b.cols());
    for m in 0..a.rows() {
        for (k, av) in a.row_iter(m) {
            let brow = b.row(k);
            let crow = c.row_mut(m);
            for (n, &bv) in brow.iter().enumerate() {
                crow[n] += av * bv;
            }
        }
    }
    c
}

/// Sampled dense-dense matrix multiplication `C = M · (A × Bᵀ)` where only
/// positions set in the mask are computed.
///
/// Note the `Bᵀ` convention: `a` is `M×K`, `b` is `N×K` (each row of `b` is a
/// key vector), matching the QKᵀ shape of attention scores, which is the
/// workload the paper draws SDDMM from.
///
/// # Panics
///
/// Panics if shapes disagree (`a.cols() != b.cols()`, mask not `M×N`).
pub fn sddmm(mask: &Mask, a: &Dense, b: &Dense) -> Dense {
    assert_eq!(a.cols(), b.cols(), "sddmm: inner dimensions differ");
    assert_eq!(mask.rows(), a.rows(), "sddmm: mask rows != a rows");
    assert_eq!(mask.cols(), b.rows(), "sddmm: mask cols != b rows");
    let mut c = Dense::zeros(mask.rows(), mask.cols());
    for m in 0..mask.rows() {
        for n in mask.row_iter(m) {
            let mut acc: Value = 0;
            for k in 0..a.cols() {
                acc += a[(m, k)] * b[(n, k)];
            }
            c[(m, n)] = acc;
        }
    }
    c
}

/// Sparse output count of useful multiply-accumulate operations for SpMM:
/// one vector-row MAC per non-zero of `A` spanning `n_cols` outputs.
pub fn spmm_mac_count(a: &CsrMatrix, n_cols: usize) -> u64 {
    a.nnz() as u64 * n_cols as u64
}

/// Useful MAC count for SDDMM: `K` MACs per set mask bit.
pub fn sddmm_mac_count(mask: &Mask, k: usize) -> u64 {
    mask.nnz() as u64 * k as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{random_mask, random_sparse, seeded_rng};

    #[test]
    fn gemm_small_known() {
        let a = Dense::from_rows(&[vec![1, 2], vec![3, 4]]);
        let b = Dense::from_rows(&[vec![5, 6], vec![7, 8]]);
        let c = gemm(&a, &b);
        assert_eq!(c, Dense::from_rows(&[vec![19, 22], vec![43, 50]]));
    }

    #[test]
    fn gemm_identity() {
        let mut rng = seeded_rng(1);
        let a = Dense::random(6, 6, &mut rng);
        let mut i = Dense::zeros(6, 6);
        for k in 0..6 {
            i[(k, k)] = 1;
        }
        assert_eq!(gemm(&a, &i), a);
        assert_eq!(gemm(&i, &a), a);
    }

    #[test]
    fn spmm_agrees_with_gemm() {
        let mut rng = seeded_rng(2);
        let a = random_sparse(24, 18, 0.6, &mut rng);
        let b = Dense::random(18, 10, &mut rng);
        assert_eq!(spmm(&a, &b), gemm(&a.to_dense(), &b));
    }

    #[test]
    fn spmm_empty_matrix_gives_zero() {
        let a = CsrMatrix::from_dense(&Dense::zeros(4, 4));
        let b = Dense::from_rows(&vec![vec![1; 3]; 4]);
        assert_eq!(spmm(&a, &b), Dense::zeros(4, 3));
    }

    #[test]
    fn sddmm_agrees_with_masked_gemm() {
        let mut rng = seeded_rng(3);
        let a = Dense::random(12, 8, &mut rng);
        let b = Dense::random(10, 8, &mut rng); // N x K
        let mask = random_mask(12, 10, 0.5, &mut rng);
        let full = gemm(&a, &b.transpose());
        let expect = mask.apply(&full).unwrap();
        assert_eq!(sddmm(&mask, &a, &b), expect);
    }

    #[test]
    fn sddmm_empty_mask_gives_zero() {
        let mut rng = seeded_rng(4);
        let a = Dense::random(4, 4, &mut rng);
        let b = Dense::random(4, 4, &mut rng);
        assert_eq!(sddmm(&Mask::empty(4, 4), &a, &b), Dense::zeros(4, 4));
    }

    #[test]
    fn mac_counts() {
        let mut rng = seeded_rng(5);
        let a = random_sparse(10, 10, 0.5, &mut rng);
        assert_eq!(spmm_mac_count(&a, 16), a.nnz() as u64 * 16);
        let m = random_mask(10, 10, 0.5, &mut rng);
        assert_eq!(sddmm_mac_count(&m, 8), m.nnz() as u64 * 8);
    }

    #[test]
    #[should_panic(expected = "spmm")]
    fn spmm_dim_mismatch_panics() {
        let a = random_sparse(4, 5, 0.5, &mut seeded_rng(6));
        let b = Dense::zeros(4, 4);
        let _ = spmm(&a, &b);
    }
}
