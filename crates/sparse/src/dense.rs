//! Row-major dense matrix container.

use crate::{SparseError, Value};
use rand::Rng;

/// A row-major dense matrix of [`Value`]s.
///
/// `Dense` is the container used for the dense operands of SpMM/SDDMM (the
/// `B` matrix, streamed `A` in SDDMM) and for all kernel outputs, so that
/// results from simulators and reference implementations compare with
/// `assert_eq!`.
///
/// # Examples
///
/// ```
/// use canon_sparse::Dense;
/// let mut m = Dense::zeros(2, 3);
/// m[(0, 1)] = 7;
/// assert_eq!(m[(0, 1)], 7);
/// assert_eq!(m.row(0), &[0, 7, 0]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Dense {
    rows: usize,
    cols: usize,
    data: Vec<Value>,
}

impl Dense {
    /// Creates a `rows`×`cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Dense {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Value>) -> Result<Self, SparseError> {
        if data.len() != rows * cols {
            return Err(SparseError::DimensionMismatch {
                context: format!(
                    "data length {} does not match {}x{} = {}",
                    data.len(),
                    rows,
                    cols,
                    rows * cols
                ),
            });
        }
        Ok(Dense { rows, cols, data })
    }

    /// Creates a matrix from nested rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths.
    pub fn from_rows(rows: &[Vec<Value>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "all rows must have equal length");
            data.extend_from_slice(row);
        }
        Dense {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Creates a matrix with entries drawn uniformly from the INT8-friendly
    /// range `[-4, 4]`, excluding zero so that "dense" really means dense.
    pub fn random<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let data = (0..rows * cols)
            .map(|_| {
                let v: Value = rng.gen_range(-4..4);
                if v >= 0 {
                    v + 1
                } else {
                    v
                }
            })
            .collect();
        Dense { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of the underlying row-major storage.
    pub fn as_slice(&self) -> &[Value] {
        &self.data
    }

    /// A single row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[Value] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of a single row.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [Value] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns the element at `(r, c)` or `None` when out of bounds.
    pub fn get(&self, r: usize, c: usize) -> Option<Value> {
        if r < self.rows && c < self.cols {
            Some(self.data[r * self.cols + c])
        } else {
            None
        }
    }

    /// The transpose of this matrix.
    pub fn transpose(&self) -> Dense {
        let mut t = Dense::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Number of non-zero entries.
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|&&v| v != 0).count()
    }

    /// Fraction of entries that are zero, in `[0, 1]`.
    pub fn sparsity(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        1.0 - self.nnz() as f64 / self.data.len() as f64
    }

    /// Elementwise sum of two matrices.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] when shapes differ.
    pub fn checked_add(&self, other: &Dense) -> Result<Dense, SparseError> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(SparseError::DimensionMismatch {
                context: format!(
                    "{}x{} + {}x{}",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(Dense {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Consumes the matrix and returns its row-major storage.
    pub fn into_vec(self) -> Vec<Value> {
        self.data
    }
}

impl std::ops::Index<(usize, usize)> for Dense {
    type Output = Value;
    fn index(&self, (r, c): (usize, usize)) -> &Value {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Dense {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Value {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::seeded_rng;

    #[test]
    fn zeros_and_index() {
        let mut m = Dense::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.nnz(), 0);
        m[(2, 3)] = -5;
        assert_eq!(m[(2, 3)], -5);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Dense::from_vec(2, 2, vec![1, 2, 3]).is_err());
        let m = Dense::from_vec(2, 2, vec![1, 2, 3, 4]).unwrap();
        assert_eq!(m[(1, 0)], 3);
    }

    #[test]
    fn from_rows_builds_row_major() {
        let m = Dense::from_rows(&[vec![1, 2], vec![3, 4]]);
        assert_eq!(m.as_slice(), &[1, 2, 3, 4]);
        assert_eq!(m.row(1), &[3, 4]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn from_rows_rejects_ragged() {
        let _ = Dense::from_rows(&[vec![1], vec![2, 3]]);
    }

    #[test]
    fn transpose_roundtrip() {
        let mut rng = seeded_rng(3);
        let m = Dense::random(5, 7, &mut rng);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(6, 4)], m[(4, 6)]);
    }

    #[test]
    fn random_is_fully_dense() {
        let mut rng = seeded_rng(9);
        let m = Dense::random(8, 8, &mut rng);
        assert_eq!(m.nnz(), 64);
        assert_eq!(m.sparsity(), 0.0);
        assert!(m.as_slice().iter().all(|&v| (-4..=4).contains(&v)));
    }

    #[test]
    fn checked_add_shapes() {
        let a = Dense::from_rows(&[vec![1, 2]]);
        let b = Dense::from_rows(&[vec![10, 20]]);
        assert_eq!(a.checked_add(&b).unwrap().row(0), &[11, 22]);
        let c = Dense::zeros(2, 2);
        assert!(a.checked_add(&c).is_err());
    }

    #[test]
    fn get_bounds() {
        let m = Dense::zeros(2, 2);
        assert_eq!(m.get(1, 1), Some(0));
        assert_eq!(m.get(2, 0), None);
        assert_eq!(m.get(0, 2), None);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_panics_out_of_bounds() {
        let m = Dense::zeros(2, 2);
        let _ = m[(0, 2)];
    }
}
