//! Sparse and dense matrix substrate for the Canon reproduction.
//!
//! The Canon paper evaluates sparse tensor kernels (SpMM, SDDMM) over inputs
//! whose sparsity ranges from dense to 95% sparse, in unstructured, N:M
//! structured, and sliding-window structured forms. This crate provides:
//!
//! * matrix containers: [`Dense`], [`CsrMatrix`], [`CooMatrix`] and the
//!   bit-mask type [`Mask`];
//! * sparsity generators in [`gen`] (uniform Bernoulli, skewed row
//!   distributions, N:M structured, sliding-window masks);
//! * golden reference kernels in [`mod@reference`] (GEMM, SpMM, SDDMM) that every
//!   accelerator simulator in the workspace is validated against;
//! * workload statistics in [`stats`] (nnz/row histograms, arithmetic
//!   intensity) used by the evaluation harness.
//!
//! Values are `i32`. The modelled hardware is an INT8 fabric that accumulates
//! into 32-bit registers; generators draw from small ranges so that integer
//! arithmetic is exact and results can be compared bit-for-bit with the
//! simulators.
//!
//! # Examples
//!
//! ```
//! use canon_sparse::{Dense, gen, reference};
//!
//! let mut rng = gen::seeded_rng(1);
//! let a = gen::random_sparse(16, 16, 0.7, &mut rng);
//! let b = Dense::random(16, 8, &mut rng);
//! let c = reference::spmm(&a, &b);
//! assert_eq!(c.rows(), 16);
//! assert_eq!(c.cols(), 8);
//! ```

pub mod coo;
pub mod csr;
pub mod dense;
pub mod gen;
pub mod mask;
pub mod reference;
pub mod stats;

pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use dense::Dense;
pub use mask::Mask;

/// The element type used throughout the workspace.
///
/// The modelled fabric is an INT8 datapath with 32-bit accumulation; using
/// `i32` end-to-end keeps reference results bit-exact while still allowing
/// generators to restrict magnitudes to the INT8 range.
pub type Value = i32;

/// Errors produced by matrix constructors and kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// Matrix dimensions do not agree for the requested operation.
    DimensionMismatch {
        /// Human-readable description of the two shapes involved.
        context: String,
    },
    /// A coordinate lies outside the matrix bounds.
    OutOfBounds {
        /// Row index of the offending entry.
        row: usize,
        /// Column index of the offending entry.
        col: usize,
        /// Number of rows in the matrix.
        rows: usize,
        /// Number of columns in the matrix.
        cols: usize,
    },
    /// CSR structural invariant violated (row pointers not monotone, etc.).
    InvalidStructure {
        /// Explanation of the violated invariant.
        reason: String,
    },
}

impl std::fmt::Display for SparseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SparseError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch: {context}")
            }
            SparseError::OutOfBounds {
                row,
                col,
                rows,
                cols,
            } => write!(
                f,
                "entry ({row}, {col}) out of bounds for {rows}x{cols} matrix"
            ),
            SparseError::InvalidStructure { reason } => {
                write!(f, "invalid sparse structure: {reason}")
            }
        }
    }
}

impl std::error::Error for SparseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_nonempty() {
        let e = SparseError::DimensionMismatch {
            context: "a.cols (3) vs b.rows (4)".into(),
        };
        assert!(e.to_string().contains("dimension mismatch"));
        let e = SparseError::OutOfBounds {
            row: 5,
            col: 6,
            rows: 2,
            cols: 2,
        };
        assert!(e.to_string().contains("out of bounds"));
        let e = SparseError::InvalidStructure {
            reason: "row_ptr not monotone".into(),
        };
        assert!(e.to_string().contains("invalid sparse structure"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SparseError>();
    }
}
