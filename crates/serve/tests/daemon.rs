//! In-process daemon integration tests: the full request lifecycle —
//! caching, coalescing, backpressure, cancellation, structured failure
//! replies, drain — plus torn-tail journal recovery under the daemon's
//! append path.

use std::path::{Path, PathBuf};
use std::thread::JoinHandle;
use std::time::Duration;

use canon_core::FaultAction;
use canon_serve::daemon::{run_daemon, ServeOptions, EXIT_DRAINED};
use canon_serve::protocol::{Reply, Request, SubmitRequest};
use canon_serve::Client;
use canon_sparse::gen::SparsityBand;

/// Fresh scratch directory per test.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("canon-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Spawns a daemon and blocks until its socket accepts connections.
fn start_daemon(opts: ServeOptions) -> (JoinHandle<std::io::Result<i32>>, PathBuf) {
    let socket = opts.socket.clone();
    let handle = std::thread::spawn(move || run_daemon(&opts));
    for _ in 0..500 {
        if Client::connect(&socket).is_ok() {
            return (handle, socket);
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("daemon did not start listening on {}", socket.display());
}

fn opts_for(dir: &Path) -> ServeOptions {
    ServeOptions {
        socket: dir.join("serve.sock"),
        store: dir.join("store.jsonl"),
        workers: 2,
        queue_capacity: 64,
        ..ServeOptions::default()
    }
}

/// A fast healthy cell: GEMM at 1/8 scale on the default 8×8 fabric.
fn gemm(id: &str) -> SubmitRequest {
    let mut req = SubmitRequest::new(id, "GEMM");
    req.scale = 8;
    req
}

/// A cell guaranteed to run ~`cycles` milliseconds then time out: each
/// simulated cycle sleeps 1 ms and the cycle ceiling stops the runaway.
fn slow_cell(id: &str, workload: &str, cycles: u64) -> SubmitRequest {
    let mut req = SubmitRequest::new(id, workload);
    req.scale = 8;
    req.fault = Some(FaultAction::SlowCycle { nanos: 1_000_000 });
    req.max_cycles = Some(cycles);
    req
}

/// Polls `status` until `pred` holds (the tests' substitute for sleeps,
/// which are unreliable under parallel-test CPU load).
fn wait_for(socket: &Path, pred: impl Fn(&canon_serve::StatusReply) -> bool) {
    let mut c = Client::connect(socket).unwrap();
    for _ in 0..500 {
        if let Ok(Reply::Status(s)) = c.request(&Request::Status) {
            if pred(&s) {
                return;
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("daemon never reached the expected state");
}

fn shutdown_and_join(socket: &Path, handle: JoinHandle<std::io::Result<i32>>) {
    let mut c = Client::connect(socket).unwrap();
    assert!(matches!(
        c.request(&Request::Shutdown),
        Ok(Reply::ShuttingDown)
    ));
    assert_eq!(handle.join().unwrap().unwrap(), EXIT_DRAINED);
}

#[test]
fn serves_simulates_once_and_caches() {
    let dir = scratch("cache");
    let (handle, socket) = start_daemon(opts_for(&dir));
    let mut c = Client::connect(&socket).unwrap();

    let first = match c.request(&Request::Submit(gemm("a"))).unwrap() {
        Reply::Result(r) => r,
        other => panic!("expected a result, got {other:?}"),
    };
    assert_eq!(first.status, "ok");
    assert!(!first.cached);
    assert!(first.cycles > 0);

    // Identical resubmit: the store index answers, nothing re-simulates.
    let second = match c.request(&Request::Submit(gemm("b"))).unwrap() {
        Reply::Result(r) => r,
        other => panic!("expected a result, got {other:?}"),
    };
    assert!(second.cached);
    assert_eq!(second.key, first.key);
    assert_eq!(second.cycles, first.cycles);

    let status = match c.request(&Request::Status).unwrap() {
        Reply::Status(s) => s,
        other => panic!("expected status, got {other:?}"),
    };
    assert_eq!(status.completed, 2);
    assert_eq!(status.cache_hits, 1);
    assert_eq!(status.store_records, 1);
    assert!(status.pool_misses >= 1, "first cell must build a fabric");

    shutdown_and_join(&socket, handle);
    assert!(!socket.exists(), "socket file must be unlinked on exit");
}

#[test]
fn failures_come_back_structured_and_daemon_survives() {
    let dir = scratch("faults");
    let (handle, socket) = start_daemon(opts_for(&dir));
    let mut c = Client::connect(&socket).unwrap();

    // Injected panic: the worker's catch_unwind turns it into a reply.
    let mut panicky = gemm("p");
    panicky.fault = Some(FaultAction::PanicAt { cycle: 3 });
    let r = match c.request(&Request::Submit(panicky)).unwrap() {
        Reply::Result(r) => r,
        other => panic!("expected a result, got {other:?}"),
    };
    assert_eq!(r.status, "panic");
    assert!(r.reason.contains("injected fault"), "reason: {}", r.reason);

    // Runaway cell: the cycle ceiling stops it as a structured timeout.
    let r = match c
        .request(&Request::Submit(slow_cell("t", "GEMM", 60)))
        .unwrap()
    {
        Reply::Result(r) => r,
        other => panic!("expected a result, got {other:?}"),
    };
    assert_eq!(r.status, "timeout");

    // Withheld credits: the fabric watchdog reports a deadlock.
    let mut wedged = gemm("d");
    wedged.fault = Some(FaultAction::WithholdCredits);
    let r = match c.request(&Request::Submit(wedged)).unwrap() {
        Reply::Result(r) => r,
        other => panic!("expected a result, got {other:?}"),
    };
    assert_eq!(r.status, "deadlock");

    // The daemon took a panic, a timeout, and a deadlock — and still
    // serves healthy work.
    let r = match c.request(&Request::Submit(gemm("h"))).unwrap() {
        Reply::Result(r) => r,
        other => panic!("expected a result, got {other:?}"),
    };
    assert_eq!(r.status, "ok");

    let status = match c.request(&Request::Status).unwrap() {
        Reply::Status(s) => s,
        other => panic!("expected status, got {other:?}"),
    };
    assert_eq!(status.failed_panic, 1);
    assert_eq!(status.failed_timeout, 1);
    assert_eq!(status.failed_deadlock, 1);

    shutdown_and_join(&socket, handle);
}

#[test]
fn duplicate_inflight_submits_coalesce_to_one_simulation() {
    let dir = scratch("coalesce");
    let (handle, socket) = start_daemon(ServeOptions {
        workers: 1,
        ..opts_for(&dir)
    });

    // ~150 ms in flight: long enough for the duplicate to join it.
    let cell = slow_cell("first", "SpMM-2:4", 150);
    let mut dup = cell.clone();
    dup.id = "second".into();

    let racer = std::thread::spawn({
        let socket = socket.clone();
        move || {
            let mut c = Client::connect(&socket).unwrap();
            match c.request(&Request::Submit(cell)).unwrap() {
                Reply::Result(r) => r,
                other => panic!("expected a result, got {other:?}"),
            }
        }
    });
    wait_for(&socket, |s| s.inflight == 1 || s.completed == 1);
    let mut c = Client::connect(&socket).unwrap();
    let second = match c.request(&Request::Submit(dup)).unwrap() {
        Reply::Result(r) => r,
        other => panic!("expected a result, got {other:?}"),
    };
    let first = racer.join().unwrap();

    assert_eq!(first.key, second.key);
    assert_eq!(first.status, "timeout");
    assert_eq!(second.status, "timeout");
    // The duplicate either joined the in-flight simulation or (if timing
    // slipped) hit the store index — it never simulated a second time.
    assert!(second.coalesced || second.cached);

    let status = match c.request(&Request::Status).unwrap() {
        Reply::Status(s) => s,
        other => panic!("expected status, got {other:?}"),
    };
    assert_eq!(status.coalesced + status.cache_hits, 1);
    assert_eq!(status.store_records, 1);

    shutdown_and_join(&socket, handle);
}

#[test]
fn full_queue_pushes_back_with_retry_after() {
    let dir = scratch("busy");
    let (handle, socket) = start_daemon(ServeOptions {
        workers: 1,
        queue_capacity: 1,
        ..opts_for(&dir)
    });

    // Occupy the single worker, then the single queue slot, with distinct
    // slow cells; a third distinct submit must bounce.
    let inflight = std::thread::spawn({
        let socket = socket.clone();
        move || {
            let mut c = Client::connect(&socket).unwrap();
            c.request(&Request::Submit(slow_cell("w", "GEMM", 250)))
                .unwrap()
        }
    });
    wait_for(&socket, |s| s.inflight == 1);
    let queued = std::thread::spawn({
        let socket = socket.clone();
        move || {
            let mut c = Client::connect(&socket).unwrap();
            c.request(&Request::Submit(slow_cell("q", "SDDMM-Win1", 60)))
                .unwrap()
        }
    });
    wait_for(&socket, |s| s.queue_depth == 1);

    let mut c = Client::connect(&socket).unwrap();
    match c
        .request(&Request::Submit(slow_cell("b", "PolyB-gemm", 60)))
        .unwrap()
    {
        Reply::Busy {
            id,
            retry_after_ms,
            queue_depth,
        } => {
            assert_eq!(id, "b");
            assert!(retry_after_ms > 0);
            assert_eq!(queue_depth, 1);
        }
        other => panic!("expected busy, got {other:?}"),
    }

    assert!(matches!(inflight.join().unwrap(), Reply::Result(_)));
    assert!(matches!(queued.join().unwrap(), Reply::Result(_)));

    let status = match c.request(&Request::Status).unwrap() {
        Reply::Status(s) => s,
        other => panic!("expected status, got {other:?}"),
    };
    assert_eq!(status.rejected, 1);

    shutdown_and_join(&socket, handle);
}

#[test]
fn cancel_removes_queued_submits_only() {
    let dir = scratch("cancel");
    let (handle, socket) = start_daemon(ServeOptions {
        workers: 1,
        ..opts_for(&dir)
    });

    let inflight = std::thread::spawn({
        let socket = socket.clone();
        move || {
            let mut c = Client::connect(&socket).unwrap();
            c.request(&Request::Submit(slow_cell("keep", "GEMM", 250)))
                .unwrap()
        }
    });
    wait_for(&socket, |s| s.inflight == 1);
    let victim = std::thread::spawn({
        let socket = socket.clone();
        move || {
            let mut c = Client::connect(&socket).unwrap();
            c.request(&Request::Submit(slow_cell("victim", "SpMM-2:8", 60)))
                .unwrap()
        }
    });
    wait_for(&socket, |s| s.queue_depth == 1);

    let mut c = Client::connect(&socket).unwrap();
    match c
        .request(&Request::Cancel {
            id: "victim".into(),
        })
        .unwrap()
    {
        Reply::CancelOk { cancelled } => assert_eq!(cancelled, 1),
        other => panic!("expected cancel_ok, got {other:?}"),
    }
    assert!(matches!(victim.join().unwrap(), Reply::Cancelled { id } if id == "victim"));
    // The in-flight cell is not cancellable; it finishes under its budget.
    assert!(matches!(inflight.join().unwrap(), Reply::Result(_)));

    shutdown_and_join(&socket, handle);
}

#[test]
fn drain_finishes_queued_work_before_exit() {
    let dir = scratch("drain");
    let (handle, socket) = start_daemon(ServeOptions {
        workers: 1,
        ..opts_for(&dir)
    });

    let a = std::thread::spawn({
        let socket = socket.clone();
        move || {
            let mut c = Client::connect(&socket).unwrap();
            c.request(&Request::Submit(slow_cell("a", "GEMM", 120)))
                .unwrap()
        }
    });
    wait_for(&socket, |s| s.inflight == 1);
    let b = std::thread::spawn({
        let socket = socket.clone();
        move || {
            let mut c = Client::connect(&socket).unwrap();
            c.request(&Request::Submit(slow_cell("b", "SDDMM-Win2", 60)))
                .unwrap()
        }
    });
    wait_for(&socket, |s| s.queue_depth == 1);

    let mut c = Client::connect(&socket).unwrap();
    assert!(matches!(
        c.request(&Request::Drain),
        Ok(Reply::ShuttingDown)
    ));

    // Drain (unlike shutdown) lets the queue finish: both submits resolve.
    assert!(matches!(a.join().unwrap(), Reply::Result(_)));
    assert!(matches!(b.join().unwrap(), Reply::Result(_)));
    assert_eq!(handle.join().unwrap().unwrap(), EXIT_DRAINED);

    // And a submit racing the drain would have seen `draining`, never a
    // silent drop: the daemon is gone now, so connect fails cleanly.
    assert!(Client::connect(&socket).is_err());
}

#[test]
fn torn_tail_append_recovers_and_converges_byte_identically() {
    let dir = scratch("torn");

    let submits = || {
        let mut s1 = SubmitRequest::new("s1", "SpMM");
        s1.band = Some(SparsityBand::S3);
        s1.scale = 8;
        (s1, gemm("s2"))
    };

    // Reference store: one uninterrupted daemon serves both cells.
    let clean = ServeOptions {
        socket: dir.join("clean.sock"),
        store: dir.join("clean.jsonl"),
        ..opts_for(&dir)
    };
    let (handle, socket) = start_daemon(clean.clone());
    let mut c = Client::connect(&socket).unwrap();
    let (s1, s2) = submits();
    assert!(
        matches!(c.request(&Request::Submit(s1)).unwrap(), Reply::Result(r) if r.status == "ok")
    );
    assert!(
        matches!(c.request(&Request::Submit(s2)).unwrap(), Reply::Result(r) if r.status == "ok")
    );
    shutdown_and_join(&socket, handle);

    // Crashed store: the same two acknowledged appends, then a torn tail —
    // half a record plus line noise — as a mid-append kill would leave.
    let crashed = dir.join("crashed.jsonl");
    std::fs::copy(&clean.store, &crashed).unwrap();
    let intact = std::fs::read(&crashed).unwrap();
    let mut damaged = intact.clone();
    damaged.extend_from_slice(b"{\"key\":\"feedfeedfeedfeed\",\"salt\":\"canon");
    std::fs::write(&crashed, &damaged).unwrap();

    // Restart over the damaged store: recovery is reported in `status`,
    // both cells hit the index (nothing re-simulates).
    let reopened = ServeOptions {
        socket: dir.join("crashed.sock"),
        store: crashed.clone(),
        ..opts_for(&dir)
    };
    let (handle, socket) = start_daemon(reopened);
    let mut c = Client::connect(&socket).unwrap();
    let status = match c.request(&Request::Status).unwrap() {
        Reply::Status(s) => s,
        other => panic!("expected status, got {other:?}"),
    };
    assert_eq!(status.recovery_loaded, 2);
    assert!(
        status.recovery_torn_bytes > 0 || status.recovery_unreadable > 0,
        "damage must be reported: {status:?}"
    );
    let (s1, s2) = submits();
    for req in [s1, s2] {
        match c.request(&Request::Submit(req)).unwrap() {
            Reply::Result(r) => {
                assert_eq!(r.status, "ok");
                assert!(r.cached, "acknowledged cells must survive the crash");
            }
            other => panic!("expected a result, got {other:?}"),
        }
    }
    shutdown_and_join(&socket, handle);

    // After the deterministic key-sorted rewrite, the crashed-and-recovered
    // store is byte-identical to the clean one.
    canon_sweep::ResultStore::open(&clean.store)
        .unwrap()
        .compact()
        .unwrap();
    canon_sweep::ResultStore::open(&crashed)
        .unwrap()
        .compact()
        .unwrap();
    assert_eq!(
        std::fs::read(&clean.store).unwrap(),
        std::fs::read(&crashed).unwrap(),
        "gc'd stores must converge byte-identically"
    );
}

#[test]
fn second_store_user_fails_fast_while_daemon_holds_the_lock() {
    let dir = scratch("lock");
    let opts = opts_for(&dir);
    let (handle, socket) = start_daemon(opts.clone());

    // A concurrent batch sweep (or gc) against the daemon-owned store must
    // fail fast with an addressable message, not corrupt the journal.
    let err = canon_sweep::StoreLock::acquire(&opts.store).unwrap_err();
    assert!(
        err.to_string().contains("locked by another process"),
        "{err}"
    );

    shutdown_and_join(&socket, handle);
    // Lock released on daemon exit.
    drop(canon_sweep::StoreLock::acquire(&opts.store).unwrap());
}
