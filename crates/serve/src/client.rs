//! Blocking protocol client.
//!
//! One [`Client`] is one connection, and the protocol is strictly
//! request-reply per connection, so parallel submission is expressed as
//! parallel clients — which is exactly what [`submit_batch`] does for the
//! `repro submit` verb: N connections draining one work list, honoring
//! `busy` backpressure by sleeping the daemon-suggested delay and
//! retrying.

use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::protocol::{Reply, Request, SubmitRequest};

/// One connection to a serving daemon.
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Client {
    /// Connects to the daemon's socket.
    pub fn connect(socket: impl AsRef<Path>) -> io::Result<Client> {
        let stream = UnixStream::connect(socket)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Sends one request and blocks for its reply line.
    pub fn request(&mut self, req: &Request) -> io::Result<Reply> {
        let mut line = req.to_line();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection before replying",
            ));
        }
        Reply::parse(reply.trim()).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Submits one cell, sleeping out `busy` replies (the daemon's
    /// suggested `retry_after_ms`) up to `max_busy_retries` times. The
    /// final reply — including a `busy` that exhausted the retry budget —
    /// is returned as-is.
    pub fn submit_with_retry(
        &mut self,
        submit: &SubmitRequest,
        max_busy_retries: u32,
    ) -> io::Result<Reply> {
        let mut attempts = 0;
        loop {
            let reply = self.request(&Request::Submit(submit.clone()))?;
            match reply {
                Reply::Busy { retry_after_ms, .. } if attempts < max_busy_retries => {
                    attempts += 1;
                    std::thread::sleep(Duration::from_millis(retry_after_ms));
                }
                other => return Ok(other),
            }
        }
    }
}

/// Tally of one [`submit_batch`] run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchOutcome {
    /// One reply per submit, in input order.
    pub replies: Vec<Option<Reply>>,
    /// Replies with `status == ok`.
    pub ok: usize,
    /// Replies with `status == unsupported` — the figures' `X` cells, an
    /// expected grid outcome rather than a failure.
    pub unsupported: usize,
    /// Structured failure replies (panic/deadlock/timeout/transient).
    pub failed: usize,
    /// `error`-status results and protocol `error` replies.
    pub errors: usize,
    /// Submits still rejected after the busy-retry budget, or refused
    /// because the daemon was draining.
    pub refused: usize,
    /// Replies served from the store index.
    pub cached: usize,
    /// Replies that rode another request's simulation.
    pub coalesced: usize,
}

impl BatchOutcome {
    fn absorb(&mut self, reply: &Reply) {
        match reply {
            Reply::Result(r) => {
                if r.is_ok() {
                    self.ok += 1;
                } else if r.status == "unsupported" {
                    self.unsupported += 1;
                } else if r.is_failure() {
                    self.failed += 1;
                } else {
                    self.errors += 1;
                }
                if r.cached {
                    self.cached += 1;
                }
                if r.coalesced {
                    self.coalesced += 1;
                }
            }
            Reply::Busy { .. } | Reply::Draining { .. } | Reply::Cancelled { .. } => {
                self.refused += 1;
            }
            _ => self.errors += 1,
        }
    }
}

/// Submits a batch over `connections` parallel clients, each with a
/// `max_busy_retries` backpressure budget per cell.
///
/// # Errors
///
/// Fails only when no connection can be established at all; per-cell I/O
/// errors surface as `error` replies in the outcome.
pub fn submit_batch(
    socket: &Path,
    submits: &[SubmitRequest],
    connections: usize,
    max_busy_retries: u32,
) -> io::Result<BatchOutcome> {
    // Fail fast (and typically: daemon not running) before spawning.
    drop(Client::connect(socket)?);
    let next = AtomicUsize::new(0);
    let replies: Vec<Mutex<Option<Reply>>> = submits.iter().map(|_| Mutex::new(None)).collect();
    let workers = connections.clamp(1, submits.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let next = &next;
            let replies = &replies;
            scope.spawn(move || {
                let mut client = match Client::connect(socket) {
                    Ok(c) => c,
                    Err(_) => return,
                };
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= submits.len() {
                        return;
                    }
                    let reply = match client.submit_with_retry(&submits[i], max_busy_retries) {
                        Ok(r) => r,
                        Err(e) => Reply::Error {
                            id: submits[i].id.clone(),
                            message: format!("client I/O error: {e}"),
                        },
                    };
                    *replies[i].lock().unwrap() = Some(reply);
                }
            });
        }
    });
    let mut outcome = BatchOutcome::default();
    for slot in replies {
        let reply = slot.into_inner().unwrap();
        if let Some(r) = &reply {
            outcome.absorb(r);
        } else {
            outcome.errors += 1;
        }
        outcome.replies.push(reply);
    }
    Ok(outcome)
}
