//! `canon-serve` — the sweep engine stood up as a resident service.
//!
//! The batch sweep (`canon-sweep`) is one process, one grid, exit. This
//! crate runs the same per-cell execution stack — `catch_unwind`
//! isolation, deadlock/timeout budgets, transient retry, structured
//! [`CellFailure`](canon_sweep::CellFailure) records — behind a
//! long-running daemon on a Unix-domain socket, so scenario requests are
//! served from warm state instead of paying process + fabric construction
//! per grid:
//!
//! * [`protocol`] — the line-JSON wire format (`submit` / `status` /
//!   `cancel` / `drain` / `shutdown`), sharing the result store's JSON
//!   dialect ([`canon_sweep::store::parse_flat_object`]);
//! * [`daemon`] — the resident server: a bounded request queue with
//!   explicit backpressure, worker threads owning warm fabric pools
//!   ([`canon_core::pool`]), in-flight deduplication so identical
//!   scenarios simulate exactly once, the content-hashed
//!   [`ResultStore`](canon_sweep::ResultStore) promoted to a serving tier
//!   (in-memory index hit before simulate, fsync'd journal append before
//!   acknowledge), and graceful drain on protocol command or signal;
//! * [`client`] — a blocking protocol client plus the parallel batch
//!   submitter the `repro submit` verb and the end-to-end tests drive.
//!
//! # Robustness contract
//!
//! A wedged request must never take down the daemon: every cell runs under
//! `catch_unwind` with per-request cycle/wall budgets, and panics,
//! deadlocks, and timeouts come back as structured `result` replies with
//! the PR 8 failure taxonomy, not as connection drops. A killed daemon
//! must never lose acknowledged work: a `result` reply is only written
//! after the record's fsync'd journal append, so a SIGKILLed daemon
//! restarted over the same store re-serves everything it acknowledged and
//! converges (`repro store gc`) to the byte-identical store of an
//! uninterrupted run.

pub mod client;
pub mod daemon;
pub mod protocol;

pub use client::{submit_batch, BatchOutcome, Client};
pub use daemon::{run_daemon, ServeOptions, EXIT_DRAINED, EXIT_SIGINT, EXIT_SIGTERM};
pub use protocol::{Reply, Request, ResultReply, StatusReply, SubmitRequest};
