//! The resident serving daemon.
//!
//! One `run_daemon` call owns a Unix-domain socket, the result store (and
//! its [`StoreLock`]), a bounded request queue, and a worker pool; it
//! returns only when drained, handing back the exit code the process
//! should terminate with.
//!
//! # Request lifecycle
//!
//! ```text
//! accept → parse → validate            (error reply on bad input)
//!   → store index hit?                 (result reply, cached=true)
//!   → identical cell in flight/queued? (join its waiter list; one
//!                                       simulation serves all)
//!   → queue full?                      (busy reply + retry_after_ms)
//!   → enqueue; a worker pops it, simulates under catch_unwind +
//!     budgets on a warm pooled fabric, fsync-appends the record,
//!     then replies to every waiter    (result reply)
//! ```
//!
//! Durability: the journal append happens **before** any waiter sees its
//! reply, so an acknowledged result survives SIGKILL. A killed daemon
//! restarted over the same store serves the acknowledged cells from the
//! index (after the store's standard torn-tail recovery) and re-simulates
//! only what was never acknowledged — converging, after `repro store gc`,
//! to the byte-identical store of an uninterrupted run.
//!
//! # Drain semantics
//!
//! | trigger | queued cells | in-flight cells | exit code |
//! |---|---|---|---|
//! | `drain` command | executed to completion | finish under budgets | 0 |
//! | `shutdown` command | cancelled (`cancelled` reply) | finish | 0 |
//! | SIGINT | cancelled, `interrupted` set | finish | 130 |
//! | SIGTERM | cancelled, `interrupted` set | finish | 143 |
//!
//! In-flight cells are never killed mid-simulation — their own
//! wall-clock/cycle budgets bound how long a drain can take.

use std::collections::{HashMap, VecDeque};
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicI32, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use canon_core::pool::{self, PoolStats};
use canon_core::CanonConfig;
use canon_sweep::backend::OperandCache;
use canon_sweep::engine::{execute_cell, SweepOptions};
use canon_sweep::scenario::Scenario;
use canon_sweep::store::{cell_key, cfg_fingerprint, RecordStatus};
use canon_sweep::{CellFailure, ResultStore, StoreLock};

use crate::protocol::{Reply, Request, ResultReply, StatusReply, SubmitRequest};

/// Clean protocol-initiated drain/shutdown.
pub const EXIT_DRAINED: i32 = 0;
/// Drained because SIGINT arrived (128 + 2, the shell convention).
pub const EXIT_SIGINT: i32 = 130;
/// Drained because SIGTERM arrived (128 + 15).
pub const EXIT_SIGTERM: i32 = 143;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Unix-domain socket path to listen on.
    pub socket: PathBuf,
    /// Result-store path (also the lock-file anchor).
    pub store: PathBuf,
    /// Worker threads (each owns a warm fabric pool).
    pub workers: usize,
    /// Bounded queue capacity; submits beyond it get `busy`.
    pub queue_capacity: usize,
    /// Base Canon configuration requests inherit.
    pub base_cfg: CanonConfig,
    /// Transient-retry budget per cell.
    pub max_retries: u32,
    /// Backoff base between transient retries.
    pub retry_backoff: Duration,
    /// Signal slot: a handler stores the raw signal number (SIGINT = 2,
    /// SIGTERM = 15) here and the accept loop turns it into a drain.
    /// `None` disables signal-driven drain (in-process tests).
    pub signal: Option<Arc<AtomicI32>>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            socket: PathBuf::from("canon-serve.sock"),
            store: PathBuf::from("sweep.jsonl"),
            workers: 2,
            queue_capacity: 64,
            base_cfg: CanonConfig::default(),
            max_retries: 2,
            retry_backoff: Duration::from_millis(10),
            signal: None,
        }
    }
}

/// One queued cell: a scenario to simulate plus everyone waiting on it.
struct Job {
    key: String,
    scenario: Scenario,
    cfg: CanonConfig,
    /// `(request id, reply channel)` — the first entry is the submit that
    /// created the job; later entries coalesced onto it.
    waiters: Vec<(String, mpsc::Sender<Reply>)>,
}

/// Mutex-guarded queue state.
struct QState {
    queue: VecDeque<Job>,
    /// Waiters of cells currently simulating, by key.
    inflight: HashMap<String, Vec<(String, mpsc::Sender<Reply>)>>,
    /// Set at drain: workers exit once the queue is empty.
    stop: bool,
}

/// Monotonic counters, all relaxed — they feed `status`, not control flow.
#[derive(Default)]
struct Counters {
    completed: AtomicU64,
    cache_hits: AtomicU64,
    coalesced: AtomicU64,
    rejected: AtomicU64,
    cancelled: AtomicU64,
    retries: AtomicU64,
    failed_panic: AtomicU64,
    failed_deadlock: AtomicU64,
    failed_timeout: AtomicU64,
    failed_transient: AtomicU64,
}

struct Shared {
    state: Mutex<QState>,
    work: Condvar,
    store: Mutex<ResultStore>,
    counters: Counters,
    draining: AtomicBool,
    interrupted: AtomicBool,
    /// Per-worker warm-pool snapshots, summed by `status`.
    pool_stats: Mutex<Vec<PoolStats>>,
    opts: SweepOptions,
    base_cfg: CanonConfig,
    queue_capacity: usize,
    workers: usize,
    start: Instant,
}

impl Shared {
    fn status(&self) -> StatusReply {
        let (queue_depth, inflight) = {
            let st = self.state.lock().unwrap();
            (st.queue.len(), st.inflight.len())
        };
        let (store_records, recovery) = {
            let store = self.store.lock().unwrap();
            (store.len(), store.recovery())
        };
        let pool = {
            let stats = self.pool_stats.lock().unwrap();
            stats.iter().fold(PoolStats::default(), |acc, s| PoolStats {
                hits: acc.hits + s.hits,
                misses: acc.misses + s.misses,
                discarded: acc.discarded + s.discarded,
                warm: acc.warm + s.warm,
            })
        };
        let c = &self.counters;
        StatusReply {
            queue_depth,
            queue_capacity: self.queue_capacity,
            inflight,
            workers: self.workers,
            draining: self.draining.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            cache_hits: c.cache_hits.load(Ordering::Relaxed),
            coalesced: c.coalesced.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            cancelled: c.cancelled.load(Ordering::Relaxed),
            retries: c.retries.load(Ordering::Relaxed),
            interrupted: self.interrupted.load(Ordering::Relaxed),
            failed_panic: c.failed_panic.load(Ordering::Relaxed),
            failed_deadlock: c.failed_deadlock.load(Ordering::Relaxed),
            failed_timeout: c.failed_timeout.load(Ordering::Relaxed),
            failed_transient: c.failed_transient.load(Ordering::Relaxed),
            pool_hits: pool.hits,
            pool_misses: pool.misses,
            pool_discarded: pool.discarded,
            store_records,
            uptime_ms: self.start.elapsed().as_millis() as u64,
            ..StatusReply::default()
        }
        .with_recovery(&recovery)
    }

    fn count_failure(&self, status: &RecordStatus) {
        if let RecordStatus::Failed(f) = status {
            match f {
                CellFailure::Panic { .. } => &self.counters.failed_panic,
                CellFailure::Deadlock { .. } => &self.counters.failed_deadlock,
                CellFailure::Timeout { .. } => &self.counters.failed_timeout,
                CellFailure::Transient { .. } => &self.counters.failed_transient,
            }
            .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Initiates a drain. `cancel_queued` empties the queue (shutdown and
    /// signal drains); a plain `drain` lets workers finish it.
    fn begin_drain(&self, cancel_queued: bool, interrupted: bool) {
        self.draining.store(true, Ordering::Relaxed);
        let mut st = self.state.lock().unwrap();
        if cancel_queued {
            let had_work = !st.queue.is_empty();
            for job in st.queue.drain(..) {
                for (id, tx) in job.waiters {
                    self.counters.cancelled.fetch_add(1, Ordering::Relaxed);
                    let _ = tx.send(Reply::Cancelled { id });
                }
            }
            if interrupted && had_work {
                self.interrupted.store(true, Ordering::Relaxed);
            }
        }
        st.stop = true;
        drop(st);
        self.work.notify_all();
    }
}

/// Handles one submit to the point of having a reply to write.
fn handle_submit(shared: &Shared, req: &SubmitRequest) -> Reply {
    let scenario = match req.scenario() {
        Ok(s) => s,
        Err(message) => {
            return Reply::Error {
                id: req.id.clone(),
                message,
            }
        }
    };
    if shared.draining.load(Ordering::Relaxed) {
        return Reply::Draining { id: req.id.clone() };
    }
    let cfg = req.cfg(&shared.base_cfg);
    let key = cell_key(&scenario, &cfg_fingerprint(&cfg));

    // Serving tier, step 1: the in-memory index answers without simulating.
    if let Some(rec) = shared.store.lock().unwrap().lookup(&key) {
        shared.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
        shared.counters.completed.fetch_add(1, Ordering::Relaxed);
        return Reply::Result(ResultReply::from_record(&req.id, rec, true, false, 0));
    }

    // Step 2: coalesce onto an identical in-flight or queued cell, or
    // enqueue — all under one lock so no identical cell can slip between
    // the checks.
    let (tx, rx) = mpsc::channel();
    {
        let mut st = shared.state.lock().unwrap();
        if shared.draining.load(Ordering::Relaxed) {
            return Reply::Draining { id: req.id.clone() };
        }
        if let Some(waiters) = st.inflight.get_mut(&key) {
            waiters.push((req.id.clone(), tx));
        } else if let Some(job) = st.queue.iter_mut().find(|j| j.key == key) {
            job.waiters.push((req.id.clone(), tx));
        } else if st.queue.len() >= shared.queue_capacity {
            shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
            // Scale the suggested backoff with how much work each worker
            // already owns.
            let per_worker = st.queue.len() / shared.workers.max(1);
            return Reply::Busy {
                id: req.id.clone(),
                retry_after_ms: (50 * (per_worker as u64 + 1)).min(2_000),
                queue_depth: st.queue.len(),
            };
        } else {
            st.queue.push_back(Job {
                key,
                scenario,
                cfg,
                waiters: vec![(req.id.clone(), tx)],
            });
            shared.work.notify_one();
        }
    }
    // Blocking submit: the reply arrives when the cell resolves (or is
    // cancelled). A dropped sender can only mean worker panic — answer
    // with a structured error rather than a dropped connection.
    rx.recv().unwrap_or_else(|_| Reply::Error {
        id: req.id.clone(),
        message: "daemon worker dropped the request".into(),
    })
}

fn handle_request(shared: &Shared, line: &str) -> (Reply, bool) {
    let req = match Request::parse(line) {
        Ok(r) => r,
        Err(message) => {
            return (
                Reply::Error {
                    id: String::new(),
                    message,
                },
                false,
            )
        }
    };
    match req {
        Request::Submit(s) => (handle_submit(shared, &s), false),
        Request::Status => (Reply::Status(Box::new(shared.status())), false),
        Request::Cancel { id } => {
            let mut cancelled = 0u64;
            let mut st = shared.state.lock().unwrap();
            for job in st.queue.iter_mut() {
                let mut kept = Vec::with_capacity(job.waiters.len());
                for (wid, tx) in job.waiters.drain(..) {
                    if wid == id {
                        cancelled += 1;
                        let _ = tx.send(Reply::Cancelled { id: wid });
                    } else {
                        kept.push((wid, tx));
                    }
                }
                job.waiters = kept;
            }
            // A job whose every waiter cancelled has no one left to care.
            st.queue.retain(|j| !j.waiters.is_empty());
            drop(st);
            shared
                .counters
                .cancelled
                .fetch_add(cancelled, Ordering::Relaxed);
            (Reply::CancelOk { cancelled }, false)
        }
        Request::Drain => {
            shared.begin_drain(false, false);
            (Reply::ShuttingDown, true)
        }
        Request::Shutdown => {
            shared.begin_drain(true, false);
            (Reply::ShuttingDown, true)
        }
    }
}

/// Serves one connection: a loop of line-in, reply-out. Returns when the
/// peer hangs up, a drain begins, or a drain/shutdown command was handled.
fn serve_connection(shared: &Shared, stream: UnixStream) {
    // The read timeout doubles as the drain poll: idle connections notice
    // `draining` within one tick instead of pinning the accept scope open.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // EOF
            Ok(_) => {
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                let (reply, close) = handle_request(shared, trimmed);
                let mut out = reply.to_line();
                out.push('\n');
                if writer.write_all(out.as_bytes()).is_err() || close {
                    return;
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.draining.load(Ordering::Relaxed) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// One worker: pops jobs, simulates them on a warm pooled fabric, journals
/// the record, then answers every waiter.
fn worker(shared: &Shared, index: usize, cache: &OperandCache) {
    // Capacity 2 keeps one warm fabric per north-edge flavour resident.
    let _pool = pool::install(2);
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if let Some(job) = st.queue.pop_front() {
                    st.inflight.insert(job.key.clone(), Vec::new());
                    break Some(job);
                }
                if st.stop {
                    break None;
                }
                let (guard, _) = shared
                    .work
                    .wait_timeout(st, Duration::from_millis(100))
                    .unwrap();
                st = guard;
            }
        };
        let Some(job) = job else { return };

        let (rec, retries) = execute_cell(
            &job.scenario,
            job.key.clone(),
            &job.cfg,
            &shared.opts,
            cache,
        );
        shared
            .counters
            .retries
            .fetch_add(retries, Ordering::Relaxed);
        shared.count_failure(&rec.status);
        if let Some(stats) = pool::stats() {
            shared.pool_stats.lock().unwrap()[index] = stats;
        }

        // Durability before acknowledgement: the fsync'd journal append
        // happens before any waiter's reply is sent.
        let append_err = shared.store.lock().unwrap().append(&rec).err();

        let mut waiters = job.waiters;
        if let Some(joined) = shared.state.lock().unwrap().inflight.remove(&job.key) {
            waiters.extend(joined);
        }
        for (pos, (id, tx)) in waiters.into_iter().enumerate() {
            let reply = match &append_err {
                Some(e) => Reply::Error {
                    id: id.clone(),
                    message: format!("result journal append failed: {e}"),
                },
                None => {
                    shared.counters.completed.fetch_add(1, Ordering::Relaxed);
                    if pos > 0 {
                        shared.counters.coalesced.fetch_add(1, Ordering::Relaxed);
                    }
                    Reply::Result(ResultReply::from_record(&id, &rec, false, pos > 0, retries))
                }
            };
            let _ = tx.send(reply);
        }
    }
}

/// Binds the listener, reclaiming a stale socket file (one whose previous
/// owner died without unlinking) but refusing to displace a live daemon.
fn bind_socket(path: &PathBuf) -> io::Result<UnixListener> {
    match UnixListener::bind(path) {
        Ok(l) => Ok(l),
        Err(e) if e.kind() == io::ErrorKind::AddrInUse => {
            if UnixStream::connect(path).is_ok() {
                return Err(io::Error::new(
                    io::ErrorKind::AddrInUse,
                    format!(
                        "socket {} is served by a live daemon; stop it or use another --socket",
                        path.display()
                    ),
                ));
            }
            std::fs::remove_file(path)?;
            UnixListener::bind(path)
        }
        Err(e) => Err(e),
    }
}

/// Runs the daemon to completion. Blocks until drained (by protocol
/// command or signal) and returns the exit code the process should
/// terminate with ([`EXIT_DRAINED`] / [`EXIT_SIGINT`] / [`EXIT_SIGTERM`]).
///
/// # Errors
///
/// Fails fast — before serving anything — when the store is locked by
/// another process, the store file is unreadable, or the socket cannot be
/// bound. I/O errors after startup are per-request (`error` replies), not
/// fatal.
pub fn run_daemon(opts: &ServeOptions) -> io::Result<i32> {
    // The lock outlives the listener: nothing else may touch the store
    // (concurrent `repro sweep`, `repro store gc`) while we serve from it.
    let _lock = StoreLock::acquire(&opts.store)?;
    let store = ResultStore::open(&opts.store)?;
    let recovery = store.recovery();
    if recovery.has_damage() {
        eprintln!(
            "serve: store recovery: {} records loaded, {} unreadable lines skipped, {} torn-tail bytes dropped",
            recovery.loaded, recovery.unreadable_lines, recovery.torn_tail_bytes
        );
    }
    let listener = bind_socket(&opts.socket)?;
    listener.set_nonblocking(true)?;

    let workers = opts.workers.max(1);
    let shared = Shared {
        state: Mutex::new(QState {
            queue: VecDeque::new(),
            inflight: HashMap::new(),
            stop: false,
        }),
        work: Condvar::new(),
        store: Mutex::new(store),
        counters: Counters::default(),
        draining: AtomicBool::new(false),
        interrupted: AtomicBool::new(false),
        pool_stats: Mutex::new(vec![PoolStats::default(); workers]),
        opts: SweepOptions {
            max_retries: opts.max_retries,
            retry_backoff: opts.retry_backoff,
            ..SweepOptions::default()
        },
        base_cfg: opts.base_cfg.clone(),
        queue_capacity: opts.queue_capacity.max(1),
        workers,
        start: Instant::now(),
    };
    let cache = OperandCache::with_capacity(16.max(2 * workers));

    let mut exit_code = EXIT_DRAINED;
    std::thread::scope(|scope| {
        for index in 0..workers {
            let shared = &shared;
            let cache = &cache;
            scope.spawn(move || worker(shared, index, cache));
        }
        // Accept loop: polls the listener and the signal slot until a
        // drain begins, then falls through to let the scope join workers.
        loop {
            if let Some(slot) = &opts.signal {
                let sig = slot.load(Ordering::Relaxed);
                if sig != 0 {
                    exit_code = if sig == 15 { EXIT_SIGTERM } else { EXIT_SIGINT };
                    shared.begin_drain(true, true);
                }
            }
            if shared.draining.load(Ordering::Relaxed) {
                break;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let shared = &shared;
                    scope.spawn(move || serve_connection(shared, stream));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
        // Drain is underway: make sure workers see `stop` even if the
        // drain came from a signal while they slept.
        shared.work.notify_all();
    });

    let _ = std::fs::remove_file(&opts.socket);
    Ok(exit_code)
}
