//! The serve wire format: one flat JSON object per line, both directions.
//!
//! The protocol deliberately reuses the result store's JSON dialect
//! ([`parse_flat_object`] / [`escape_json`]) — a reply is spelled with the
//! same escaping rules as the journal line it was appended from, and the
//! per-request fault field travels in [`FaultAction::descriptor`] form so
//! wire, fingerprint, and log spellings agree.
//!
//! # Grammar
//!
//! Requests carry a `cmd` discriminator:
//!
//! ```text
//! {"cmd":"submit","id":"r1","workload":"SpMM","band":"S2","scale":4,
//!  "rows":8,"cols":8,"arch":"Canon"}            // + optional "seed",
//!                                               //   "max_cycles",
//!                                               //   "wall_budget_ns",
//!                                               //   "fault":"panic@3"
//! {"cmd":"status"}
//! {"cmd":"cancel","id":"r1"}
//! {"cmd":"drain"}
//! {"cmd":"shutdown"}
//! ```
//!
//! Replies carry a `reply` discriminator: `result`, `busy`, `draining`,
//! `cancelled`, `cancel_ok`, `status`, `shutting_down`, `error`. A
//! `submit` blocks its connection until its one reply line; parallelism is
//! expressed as parallel connections, not pipelining.

use std::collections::HashMap;

use canon_core::{CanonConfig, FaultAction};
use canon_sparse::gen::SparsityBand;
use canon_sweep::scenario::{cell_seed, standard_workloads, Scenario, DEFAULT_BASE_SEED};
use canon_sweep::store::{cell_key, cfg_fingerprint, escape_json, parse_flat_object, JsonVal};
use canon_sweep::{RecoveryStats, StoredRecord};

/// Pushes one `"key":value` JSON pair (string value) onto `out`.
fn push_str_field(out: &mut String, key: &str, val: &str) {
    if !out.ends_with('{') {
        out.push(',');
    }
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    escape_json(val, out);
    out.push('"');
}

/// Pushes one `"key":value` JSON pair (unquoted value: number or bool).
fn push_raw_field(out: &mut String, key: &str, val: impl std::fmt::Display) {
    if !out.ends_with('{') {
        out.push(',');
    }
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&val.to_string());
}

/// One scenario-execution request. The scenario axes mirror
/// [`Scenario`]; omitted optional fields take the same defaults the grid
/// builder uses, so a bare `{"workload":"GEMM",...}` submit lands on the
/// identical store key as the equivalent `repro sweep` cell.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitRequest {
    /// Client-chosen request id, echoed in the reply (may be empty).
    pub id: String,
    /// Workload family name, resolved against
    /// [`standard_workloads`] ("GEMM", "SpMM", "PolyB-gemm", …).
    pub workload: String,
    /// Sparsity band; required for band-sensitive workloads, ignored (and
    /// normalized to `None`) otherwise.
    pub band: Option<SparsityBand>,
    /// Shape scale divisor (1 = full scale). Defaults to 1.
    pub scale: usize,
    /// Fabric geometry. Defaults to the standard 8×8.
    pub geometry: (usize, usize),
    /// Architecture label ("Canon", "Systolic", …). Defaults to Canon.
    pub arch: canon_energy::Arch,
    /// Operand seed; `None` derives the grid default
    /// ([`cell_seed`] over [`DEFAULT_BASE_SEED`]).
    pub seed: Option<u64>,
    /// Per-request cycle ceiling ([`CanonConfig::max_cycles`]).
    pub max_cycles: Option<u64>,
    /// Per-request wall-clock budget in ns
    /// ([`CanonConfig::wall_budget_ns`]).
    pub wall_budget_ns: Option<u64>,
    /// Injected fault, in [`FaultAction::descriptor`] spelling on the wire.
    pub fault: Option<FaultAction>,
}

impl SubmitRequest {
    /// A default-axes submit for `workload` (band-sensitive workloads still
    /// need [`SubmitRequest::band`] set before use).
    pub fn new(id: impl Into<String>, workload: impl Into<String>) -> SubmitRequest {
        SubmitRequest {
            id: id.into(),
            workload: workload.into(),
            band: None,
            scale: 1,
            geometry: (8, 8),
            arch: canon_energy::Arch::Canon,
            seed: None,
            max_cycles: None,
            wall_budget_ns: None,
            fault: None,
        }
    }

    /// Resolves the request into a concrete [`Scenario`], or a
    /// client-addressable validation error.
    pub fn scenario(&self) -> Result<Scenario, String> {
        let spec = standard_workloads()
            .into_iter()
            .find(|w| w.name == self.workload)
            .ok_or_else(|| format!("unknown workload '{}'", self.workload))?;
        let band = if spec.template.band_sensitive() {
            Some(self.band.ok_or_else(|| {
                format!(
                    "workload '{}' is band-sensitive; band required",
                    self.workload
                )
            })?)
        } else {
            None
        };
        if self.scale == 0 || self.geometry.0 == 0 || self.geometry.1 == 0 {
            return Err("scale, rows, and cols must be positive".into());
        }
        let seed = self
            .seed
            .unwrap_or_else(|| cell_seed(DEFAULT_BASE_SEED, &self.workload, band, self.scale));
        Ok(Scenario {
            workload: self.workload.clone(),
            op: spec.template.instantiate(band, self.scale),
            band,
            geometry: self.geometry,
            scale: self.scale,
            arch: self.arch,
            seed,
        })
    }

    /// The effective Canon configuration of this request: `base` plus the
    /// per-request budgets and fault — the exact analogue of
    /// [`canon_sweep::SweepOptions::cell_cfg`], so daemon and batch sweep
    /// fingerprint identically configured cells identically.
    pub fn cfg(&self, base: &CanonConfig) -> CanonConfig {
        let mut cfg = base.clone();
        if let Some(ns) = self.wall_budget_ns {
            cfg.wall_budget_ns = Some(ns);
        }
        if let Some(c) = self.max_cycles {
            cfg.max_cycles = Some(c);
        }
        cfg.fault = self.fault;
        cfg
    }

    /// The store key this request resolves to under `base`.
    pub fn key(&self, base: &CanonConfig) -> Result<String, String> {
        let scenario = self.scenario()?;
        Ok(cell_key(&scenario, &cfg_fingerprint(&self.cfg(base))))
    }
}

/// Parses an architecture label as spelled by
/// [`canon_energy::Arch::label`].
pub fn arch_from_label(label: &str) -> Option<canon_energy::Arch> {
    canon_energy::Arch::all()
        .into_iter()
        .find(|a| a.label() == label)
}

/// Parses a sparsity-band label ("S1"/"S2"/"S3").
pub fn band_from_label(label: &str) -> Option<SparsityBand> {
    SparsityBand::all()
        .into_iter()
        .find(|b| b.to_string() == label)
}

/// One protocol request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Execute a scenario (blocking: one reply when it resolves).
    Submit(SubmitRequest),
    /// Report daemon health and counters.
    Status,
    /// Cancel queued submits with the given request id (in-flight cells run
    /// to completion under their budgets).
    Cancel {
        /// The id the submits were tagged with.
        id: String,
    },
    /// Stop accepting work, finish what is queued/in-flight, then exit 0.
    Drain,
    /// Stop accepting work, cancel the queue, finish in-flight, exit 0.
    Shutdown,
}

impl Request {
    /// Serializes to one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut out = String::from("{");
        match self {
            Request::Submit(s) => {
                push_str_field(&mut out, "cmd", "submit");
                push_str_field(&mut out, "id", &s.id);
                push_str_field(&mut out, "workload", &s.workload);
                if let Some(b) = s.band {
                    push_str_field(&mut out, "band", &b.to_string());
                }
                push_raw_field(&mut out, "scale", s.scale);
                push_raw_field(&mut out, "rows", s.geometry.0);
                push_raw_field(&mut out, "cols", s.geometry.1);
                push_str_field(&mut out, "arch", s.arch.label());
                if let Some(seed) = s.seed {
                    push_raw_field(&mut out, "seed", seed);
                }
                if let Some(c) = s.max_cycles {
                    push_raw_field(&mut out, "max_cycles", c);
                }
                if let Some(ns) = s.wall_budget_ns {
                    push_raw_field(&mut out, "wall_budget_ns", ns);
                }
                if let Some(f) = &s.fault {
                    push_str_field(&mut out, "fault", &f.descriptor());
                }
            }
            Request::Status => push_str_field(&mut out, "cmd", "status"),
            Request::Cancel { id } => {
                push_str_field(&mut out, "cmd", "cancel");
                push_str_field(&mut out, "id", id);
            }
            Request::Drain => push_str_field(&mut out, "cmd", "drain"),
            Request::Shutdown => push_str_field(&mut out, "cmd", "shutdown"),
        }
        out.push('}');
        out
    }

    /// Parses one wire line. Errors are human-readable and safe to echo
    /// back in an `error` reply.
    pub fn parse(line: &str) -> Result<Request, String> {
        let obj =
            parse_flat_object(line).ok_or("malformed request line (not a flat JSON object)")?;
        let cmd = obj
            .get("cmd")
            .and_then(JsonVal::as_str)
            .ok_or("missing 'cmd'")?;
        match cmd {
            "status" => Ok(Request::Status),
            "drain" => Ok(Request::Drain),
            "shutdown" => Ok(Request::Shutdown),
            "cancel" => Ok(Request::Cancel {
                id: obj
                    .get("id")
                    .and_then(JsonVal::as_str)
                    .ok_or("cancel requires 'id'")?
                    .to_string(),
            }),
            "submit" => Ok(Request::Submit(parse_submit(&obj)?)),
            other => Err(format!("unknown cmd '{other}'")),
        }
    }
}

fn parse_submit(obj: &HashMap<String, JsonVal>) -> Result<SubmitRequest, String> {
    let workload = obj
        .get("workload")
        .and_then(JsonVal::as_str)
        .ok_or("submit requires 'workload'")?
        .to_string();
    let band = match obj.get("band").and_then(JsonVal::as_str) {
        Some(label) => {
            Some(band_from_label(label).ok_or_else(|| format!("unknown band '{label}'"))?)
        }
        None => None,
    };
    let arch = match obj.get("arch").and_then(JsonVal::as_str) {
        Some(label) => arch_from_label(label).ok_or_else(|| format!("unknown arch '{label}'"))?,
        None => canon_energy::Arch::Canon,
    };
    let fault = match obj.get("fault").and_then(JsonVal::as_str) {
        Some(desc) => Some(
            FaultAction::from_descriptor(desc)
                .ok_or_else(|| format!("unparseable fault descriptor '{desc}'"))?,
        ),
        None => None,
    };
    Ok(SubmitRequest {
        id: obj
            .get("id")
            .and_then(JsonVal::as_str)
            .unwrap_or("")
            .to_string(),
        workload,
        band,
        scale: obj.get("scale").and_then(JsonVal::as_usize).unwrap_or(1),
        geometry: (
            obj.get("rows").and_then(JsonVal::as_usize).unwrap_or(8),
            obj.get("cols").and_then(JsonVal::as_usize).unwrap_or(8),
        ),
        arch,
        seed: obj.get("seed").and_then(JsonVal::as_u64),
        max_cycles: obj.get("max_cycles").and_then(JsonVal::as_u64),
        wall_budget_ns: obj.get("wall_budget_ns").and_then(JsonVal::as_u64),
        fault,
    })
}

/// The result payload of a resolved submit — a projection of the
/// journaled [`StoredRecord`] plus serving provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultReply {
    /// Echoed request id.
    pub id: String,
    /// Content-hash store key the record was journaled under.
    pub key: String,
    /// Record status: `ok`, `unsupported`, `error`, or a
    /// [`canon_sweep::CellFailure::kind`] (`panic` / `deadlock` /
    /// `timeout` / `transient`).
    pub status: String,
    /// Failure/error detail; empty for `ok` and `unsupported`.
    pub reason: String,
    /// Total cycles (abort cycle for deadlock/timeout).
    pub cycles: u64,
    /// Total energy in pJ.
    pub energy_pj: f64,
    /// Useful scalar MACs.
    pub useful_macs: u64,
    /// Effective compute utilization.
    pub utilization: f64,
    /// True when served from the store index without simulating.
    pub cached: bool,
    /// True when this request rode an identical in-flight simulation.
    pub coalesced: bool,
    /// Transient retries consumed resolving this request.
    pub retries: u64,
}

impl ResultReply {
    /// Builds the reply from a journaled record plus provenance flags.
    pub fn from_record(
        id: &str,
        rec: &StoredRecord,
        cached: bool,
        coalesced: bool,
        retries: u64,
    ) -> ResultReply {
        use canon_sweep::store::RecordStatus;
        let (status, reason) = match &rec.status {
            RecordStatus::Ok => ("ok".to_string(), String::new()),
            RecordStatus::Unsupported => ("unsupported".to_string(), String::new()),
            RecordStatus::Error(msg) => ("error".to_string(), msg.clone()),
            RecordStatus::Failed(f) => (f.kind().to_string(), f.reason().to_string()),
        };
        ResultReply {
            id: id.to_string(),
            key: rec.key.clone(),
            status,
            reason,
            cycles: rec.cycles,
            energy_pj: rec.energy_pj,
            useful_macs: rec.useful_macs,
            utilization: rec.utilization,
            cached,
            coalesced,
            retries,
        }
    }

    /// True when the cell produced metrics.
    pub fn is_ok(&self) -> bool {
        self.status == "ok"
    }

    /// True when the status is a quarantined-failure kind.
    pub fn is_failure(&self) -> bool {
        matches!(
            self.status.as_str(),
            "panic" | "deadlock" | "timeout" | "transient"
        )
    }
}

/// Daemon health and counters, served by `status`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatusReply {
    /// Requests waiting in the bounded queue.
    pub queue_depth: usize,
    /// Queue capacity (backpressure threshold).
    pub queue_capacity: usize,
    /// Cells currently simulating on workers.
    pub inflight: usize,
    /// Worker-thread count.
    pub workers: usize,
    /// True once a drain/shutdown (protocol or signal) is underway.
    pub draining: bool,
    /// Submits resolved (any status) since daemon start.
    pub completed: u64,
    /// Submits served from the store index without simulating.
    pub cache_hits: u64,
    /// Submits that rode an identical in-flight simulation.
    pub coalesced: u64,
    /// Submits rejected with `busy` (queue full).
    pub rejected: u64,
    /// Queued submits cancelled (by `cancel` or `shutdown`).
    pub cancelled: u64,
    /// Transient retry attempts consumed since daemon start.
    pub retries: u64,
    /// True when a drain stopped work before the queue emptied — the
    /// serving-tier mirror of [`canon_sweep::SweepStats::interrupted`].
    pub interrupted: bool,
    /// Quarantined panics since start.
    pub failed_panic: u64,
    /// Quarantined deadlocks since start.
    pub failed_deadlock: u64,
    /// Quarantined budget timeouts since start.
    pub failed_timeout: u64,
    /// Exhausted transient retries since start.
    pub failed_transient: u64,
    /// Warm-pool hits aggregated over workers.
    pub pool_hits: u64,
    /// Warm-pool misses (fresh constructions) aggregated over workers.
    pub pool_misses: u64,
    /// Fabrics discarded (poisoned or over capacity) aggregated over
    /// workers.
    pub pool_discarded: u64,
    /// Records resident in the store index.
    pub store_records: usize,
    /// Journal lines recovered at open ([`RecoveryStats::loaded`]).
    pub recovery_loaded: usize,
    /// Corrupt journal lines skipped at open.
    pub recovery_unreadable: usize,
    /// Torn-tail bytes truncated at open.
    pub recovery_torn_bytes: u64,
    /// Milliseconds since the daemon started serving.
    pub uptime_ms: u64,
}

impl StatusReply {
    /// Folds the store's open-time recovery stats in.
    pub fn with_recovery(mut self, rec: &RecoveryStats) -> StatusReply {
        self.recovery_loaded = rec.loaded;
        self.recovery_unreadable = rec.unreadable_lines;
        self.recovery_torn_bytes = rec.torn_tail_bytes;
        self
    }
}

/// One protocol reply line.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// A submit resolved (successfully or as a structured failure).
    Result(ResultReply),
    /// The queue is full; retry after the given delay.
    Busy {
        /// Echoed request id.
        id: String,
        /// Suggested client backoff.
        retry_after_ms: u64,
        /// Queue depth at rejection time.
        queue_depth: usize,
    },
    /// The daemon is draining and accepts no new work.
    Draining {
        /// Echoed request id (empty for non-submit commands).
        id: String,
    },
    /// This queued submit was cancelled before executing.
    Cancelled {
        /// Echoed request id.
        id: String,
    },
    /// Acknowledges a `cancel` command.
    CancelOk {
        /// Queued submits removed.
        cancelled: u64,
    },
    /// Health/counters snapshot.
    Status(Box<StatusReply>),
    /// Acknowledges `drain`/`shutdown`; the daemon exits once in-flight
    /// work resolves.
    ShuttingDown,
    /// The request could not be parsed or validated.
    Error {
        /// Echoed request id (empty when the line had none).
        id: String,
        /// What was wrong.
        message: String,
    },
}

impl Reply {
    /// Serializes to one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut out = String::from("{");
        match self {
            Reply::Result(r) => {
                push_str_field(&mut out, "reply", "result");
                push_str_field(&mut out, "id", &r.id);
                push_str_field(&mut out, "key", &r.key);
                push_str_field(&mut out, "status", &r.status);
                if !r.reason.is_empty() {
                    push_str_field(&mut out, "reason", &r.reason);
                }
                push_raw_field(&mut out, "cycles", r.cycles);
                push_raw_field(&mut out, "energy_pj", format!("{:.3}", r.energy_pj));
                push_raw_field(&mut out, "useful_macs", r.useful_macs);
                push_raw_field(&mut out, "utilization", format!("{:.6}", r.utilization));
                push_raw_field(&mut out, "cached", r.cached);
                push_raw_field(&mut out, "coalesced", r.coalesced);
                push_raw_field(&mut out, "retries", r.retries);
            }
            Reply::Busy {
                id,
                retry_after_ms,
                queue_depth,
            } => {
                push_str_field(&mut out, "reply", "busy");
                push_str_field(&mut out, "id", id);
                push_raw_field(&mut out, "retry_after_ms", retry_after_ms);
                push_raw_field(&mut out, "queue_depth", queue_depth);
            }
            Reply::Draining { id } => {
                push_str_field(&mut out, "reply", "draining");
                push_str_field(&mut out, "id", id);
            }
            Reply::Cancelled { id } => {
                push_str_field(&mut out, "reply", "cancelled");
                push_str_field(&mut out, "id", id);
            }
            Reply::CancelOk { cancelled } => {
                push_str_field(&mut out, "reply", "cancel_ok");
                push_raw_field(&mut out, "cancelled", cancelled);
            }
            Reply::Status(s) => {
                push_str_field(&mut out, "reply", "status");
                push_raw_field(&mut out, "queue_depth", s.queue_depth);
                push_raw_field(&mut out, "queue_capacity", s.queue_capacity);
                push_raw_field(&mut out, "inflight", s.inflight);
                push_raw_field(&mut out, "workers", s.workers);
                push_raw_field(&mut out, "draining", s.draining);
                push_raw_field(&mut out, "completed", s.completed);
                push_raw_field(&mut out, "cache_hits", s.cache_hits);
                push_raw_field(&mut out, "coalesced", s.coalesced);
                push_raw_field(&mut out, "rejected", s.rejected);
                push_raw_field(&mut out, "cancelled", s.cancelled);
                push_raw_field(&mut out, "retries", s.retries);
                push_raw_field(&mut out, "interrupted", s.interrupted);
                push_raw_field(&mut out, "failed_panic", s.failed_panic);
                push_raw_field(&mut out, "failed_deadlock", s.failed_deadlock);
                push_raw_field(&mut out, "failed_timeout", s.failed_timeout);
                push_raw_field(&mut out, "failed_transient", s.failed_transient);
                push_raw_field(&mut out, "pool_hits", s.pool_hits);
                push_raw_field(&mut out, "pool_misses", s.pool_misses);
                push_raw_field(&mut out, "pool_discarded", s.pool_discarded);
                push_raw_field(&mut out, "store_records", s.store_records);
                push_raw_field(&mut out, "recovery_loaded", s.recovery_loaded);
                push_raw_field(&mut out, "recovery_unreadable", s.recovery_unreadable);
                push_raw_field(&mut out, "recovery_torn_bytes", s.recovery_torn_bytes);
                push_raw_field(&mut out, "uptime_ms", s.uptime_ms);
            }
            Reply::ShuttingDown => push_str_field(&mut out, "reply", "shutting_down"),
            Reply::Error { id, message } => {
                push_str_field(&mut out, "reply", "error");
                push_str_field(&mut out, "id", id);
                push_str_field(&mut out, "message", message);
            }
        }
        out.push('}');
        out
    }

    /// Parses one wire line.
    pub fn parse(line: &str) -> Result<Reply, String> {
        let obj = parse_flat_object(line).ok_or("malformed reply line (not a flat JSON object)")?;
        let kind = obj
            .get("reply")
            .and_then(JsonVal::as_str)
            .ok_or("missing 'reply'")?;
        let id = |o: &HashMap<String, JsonVal>| {
            o.get("id")
                .and_then(JsonVal::as_str)
                .unwrap_or("")
                .to_string()
        };
        match kind {
            "result" => Ok(Reply::Result(ResultReply {
                id: id(&obj),
                key: obj
                    .get("key")
                    .and_then(JsonVal::as_str)
                    .unwrap_or("")
                    .to_string(),
                status: obj
                    .get("status")
                    .and_then(JsonVal::as_str)
                    .ok_or("result reply missing 'status'")?
                    .to_string(),
                reason: obj
                    .get("reason")
                    .and_then(JsonVal::as_str)
                    .unwrap_or("")
                    .to_string(),
                cycles: obj.get("cycles").and_then(JsonVal::as_u64).unwrap_or(0),
                energy_pj: obj
                    .get("energy_pj")
                    .and_then(JsonVal::as_f64)
                    .unwrap_or(0.0),
                useful_macs: obj
                    .get("useful_macs")
                    .and_then(JsonVal::as_u64)
                    .unwrap_or(0),
                utilization: obj
                    .get("utilization")
                    .and_then(JsonVal::as_f64)
                    .unwrap_or(0.0),
                cached: obj
                    .get("cached")
                    .and_then(JsonVal::as_bool)
                    .unwrap_or(false),
                coalesced: obj
                    .get("coalesced")
                    .and_then(JsonVal::as_bool)
                    .unwrap_or(false),
                retries: obj.get("retries").and_then(JsonVal::as_u64).unwrap_or(0),
            })),
            "busy" => Ok(Reply::Busy {
                id: id(&obj),
                retry_after_ms: obj
                    .get("retry_after_ms")
                    .and_then(JsonVal::as_u64)
                    .unwrap_or(100),
                queue_depth: obj
                    .get("queue_depth")
                    .and_then(JsonVal::as_usize)
                    .unwrap_or(0),
            }),
            "draining" => Ok(Reply::Draining { id: id(&obj) }),
            "cancelled" => Ok(Reply::Cancelled { id: id(&obj) }),
            "cancel_ok" => Ok(Reply::CancelOk {
                cancelled: obj.get("cancelled").and_then(JsonVal::as_u64).unwrap_or(0),
            }),
            "shutting_down" => Ok(Reply::ShuttingDown),
            "error" => Ok(Reply::Error {
                id: id(&obj),
                message: obj
                    .get("message")
                    .and_then(JsonVal::as_str)
                    .unwrap_or("")
                    .to_string(),
            }),
            "status" => {
                let u = |k: &str| obj.get(k).and_then(JsonVal::as_u64).unwrap_or(0);
                let us = |k: &str| obj.get(k).and_then(JsonVal::as_usize).unwrap_or(0);
                let b = |k: &str| obj.get(k).and_then(JsonVal::as_bool).unwrap_or(false);
                Ok(Reply::Status(Box::new(StatusReply {
                    queue_depth: us("queue_depth"),
                    queue_capacity: us("queue_capacity"),
                    inflight: us("inflight"),
                    workers: us("workers"),
                    draining: b("draining"),
                    completed: u("completed"),
                    cache_hits: u("cache_hits"),
                    coalesced: u("coalesced"),
                    rejected: u("rejected"),
                    cancelled: u("cancelled"),
                    retries: u("retries"),
                    interrupted: b("interrupted"),
                    failed_panic: u("failed_panic"),
                    failed_deadlock: u("failed_deadlock"),
                    failed_timeout: u("failed_timeout"),
                    failed_transient: u("failed_transient"),
                    pool_hits: u("pool_hits"),
                    pool_misses: u("pool_misses"),
                    pool_discarded: u("pool_discarded"),
                    store_records: us("store_records"),
                    recovery_loaded: us("recovery_loaded"),
                    recovery_unreadable: us("recovery_unreadable"),
                    recovery_torn_bytes: u("recovery_torn_bytes"),
                    uptime_ms: u("uptime_ms"),
                })))
            }
            other => Err(format!("unknown reply '{other}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_round_trips_through_the_wire() {
        let mut req = SubmitRequest::new("r1", "SpMM");
        req.band = Some(SparsityBand::S2);
        req.scale = 4;
        req.geometry = (8, 4);
        req.arch = canon_energy::Arch::Zed;
        req.seed = Some(42);
        req.max_cycles = Some(10_000);
        req.wall_budget_ns = Some(5_000_000_000);
        req.fault = Some(FaultAction::PanicAt { cycle: 3 });
        let wire = Request::Submit(req.clone()).to_line();
        assert_eq!(Request::parse(&wire), Ok(Request::Submit(req)));
    }

    #[test]
    fn control_requests_round_trip() {
        for req in [
            Request::Status,
            Request::Drain,
            Request::Shutdown,
            Request::Cancel { id: "x".into() },
        ] {
            assert_eq!(Request::parse(&req.to_line()), Ok(req));
        }
    }

    #[test]
    fn replies_round_trip() {
        let replies = [
            Reply::Busy {
                id: "a".into(),
                retry_after_ms: 250,
                queue_depth: 8,
            },
            Reply::Draining { id: "b".into() },
            Reply::Cancelled { id: "c".into() },
            Reply::CancelOk { cancelled: 3 },
            Reply::ShuttingDown,
            Reply::Error {
                id: String::new(),
                message: "unknown workload 'nope'".into(),
            },
            Reply::Status(Box::new(StatusReply {
                queue_depth: 2,
                queue_capacity: 64,
                inflight: 1,
                workers: 4,
                draining: true,
                completed: 10,
                cache_hits: 3,
                coalesced: 2,
                rejected: 1,
                cancelled: 1,
                retries: 5,
                interrupted: true,
                failed_panic: 1,
                failed_deadlock: 1,
                failed_timeout: 2,
                failed_transient: 1,
                pool_hits: 7,
                pool_misses: 2,
                pool_discarded: 1,
                store_records: 12,
                recovery_loaded: 12,
                recovery_unreadable: 1,
                recovery_torn_bytes: 17,
                uptime_ms: 1234,
            })),
        ];
        for r in replies {
            assert_eq!(Reply::parse(&r.to_line()), Ok(r));
        }
    }

    #[test]
    fn default_seed_matches_the_grid_builder() {
        let mut req = SubmitRequest::new("", "SpMM");
        req.band = Some(SparsityBand::S3);
        req.scale = 4;
        let scenario = req.scenario().unwrap();
        assert_eq!(
            scenario.seed,
            cell_seed(DEFAULT_BASE_SEED, "SpMM", Some(SparsityBand::S3), 4)
        );
        // And the key matches what a batch sweep computes for the same cell.
        let grid = canon_sweep::ScenarioGrid::builder()
            .workload(
                "SpMM",
                canon_sweep::OpTemplate::Spmm {
                    m: 256,
                    k: 256,
                    n: 128,
                },
            )
            .bands(&[SparsityBand::S3])
            .scales(&[4])
            .archs(&[canon_energy::Arch::Canon])
            .build();
        let batch = &grid.scenarios[0];
        assert_eq!(batch, &scenario);
    }

    #[test]
    fn submit_validation_is_addressable() {
        assert!(SubmitRequest::new("", "nope").scenario().is_err());
        // Band-sensitive workload without a band.
        assert!(SubmitRequest::new("", "SpMM").scenario().is_err());
        // Band-insensitive workload normalizes the band away.
        let mut gemm = SubmitRequest::new("", "GEMM");
        gemm.band = Some(SparsityBand::S1);
        assert_eq!(gemm.scenario().unwrap().band, None);
    }
}
