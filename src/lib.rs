//! # Canon
//!
//! A reproduction of *"A Data-Driven Dynamic Execution Orchestration
//! Architecture"* (ASPLOS 2026). Canon is a 2D-mesh spatial architecture in
//! which lightweight programmable FSM **orchestrators** translate input
//! meta-data (e.g. sparse coordinates) into PE instructions at runtime, and
//! instructions propagate across each PE row in a staggered, **time-lapsed
//! SIMD** fashion.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`arch`] — the cycle-accurate Canon simulator (`canon-core`)
//! * [`sparse`] — matrix types, sparsity generators, reference kernels
//! * [`baselines`] — systolic, 2:4 systolic, ZeD-like and CGRA simulators
//! * [`loopir`] — affine loop-nest IR and the PolyBench kernel suite
//! * [`energy`] — area / power / energy / EDP models
//! * [`workloads`] — ML model layer zoo and sparsity scenarios
//! * [`sweep`] — parallel scenario-sweep engine: declarative grids, the
//!   unified multi-backend [`Backend`](sweep::Backend) trait, a JSONL
//!   result store with run caching, and cross-backend reports
//!
//! ## Quickstart
//!
//! Run a sparse matrix–matrix multiplication (SpMM) on the default 8×8 Canon
//! fabric and verify it against the reference implementation:
//!
//! ```
//! use canon::arch::{CanonConfig, kernels::spmm::{SpmmMapping, run_spmm}};
//! use canon::sparse::{CsrMatrix, Dense, gen::random_sparse};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = canon::sparse::gen::seeded_rng(7);
//! let a = random_sparse(64, 64, 0.5, &mut rng); // 50% sparse A
//! let b = Dense::random(64, 32, &mut rng);      // dense B
//!
//! let cfg = CanonConfig::default();             // Table 1 configuration
//! let out = run_spmm(&cfg, &SpmmMapping::default(), &a, &b)?;
//!
//! let reference = canon::sparse::reference::spmm(&a, &b);
//! assert_eq!(out.result, reference);
//! println!("cycles = {}, utilization = {:.2}", out.report.cycles,
//!          out.report.compute_utilization());
//! # Ok(())
//! # }
//! ```

pub use canon_baselines as baselines;
pub use canon_core as arch;
pub use canon_energy as energy;
pub use canon_loopir as loopir;
pub use canon_sparse as sparse;
pub use canon_sweep as sweep;
pub use canon_workloads as workloads;
