//! Sweep-engine integration contract: (a) the JSONL result store is
//! byte-identical whatever the worker-thread count — record content and
//! order depend only on the grid; (b) re-running against a warm store
//! performs zero backend executions, satisfying every cell from cache.

use canon::sweep::engine::{run_sweep, SweepOptions};
use canon::sweep::scenario::{GridBuilder, OpTemplate, ScenarioGrid};
use canon::sweep::store::ResultStore;
use std::path::PathBuf;

fn test_grid() -> ScenarioGrid {
    // Three workload families (one banded) across all five architectures at
    // smoke shapes: 5 cells x 5 archs = 25 scenarios.
    GridBuilder::new()
        .workload(
            "GEMM",
            OpTemplate::Gemm {
                m: 64,
                k: 64,
                n: 32,
            },
        )
        .workload(
            "SpMM",
            OpTemplate::Spmm {
                m: 64,
                k: 64,
                n: 32,
            },
        )
        .workload(
            "Win",
            OpTemplate::Window {
                seq: 64,
                window_div: 8,
                head_dim: 32,
            },
        )
        .build()
}

fn temp_store(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "canon-sweep-determinism-{}-{name}.jsonl",
        std::process::id()
    ))
}

#[test]
fn thread_count_does_not_change_store_bytes() {
    let grid = test_grid();
    let path2 = temp_store("jobs2");
    let path8 = temp_store("jobs8");
    for (path, jobs) in [(&path2, 2), (&path8, 8)] {
        std::fs::remove_file(path).ok();
        let mut store = ResultStore::open(path).expect("open store");
        let out = run_sweep(
            &grid,
            &mut store,
            &SweepOptions {
                jobs,
                ..Default::default()
            },
        )
        .expect("sweep runs");
        assert_eq!(out.stats.total, grid.scenarios.len());
        assert_eq!(out.stats.executed, grid.scenarios.len());
    }
    let bytes2 = std::fs::read(&path2).expect("jobs=2 store");
    let bytes8 = std::fs::read(&path8).expect("jobs=8 store");
    assert!(!bytes2.is_empty());
    assert_eq!(
        bytes2, bytes8,
        "2-thread and 8-thread sweeps must produce byte-identical JSONL"
    );
    std::fs::remove_file(&path2).ok();
    std::fs::remove_file(&path8).ok();
}

#[test]
fn warm_store_hits_cache_for_every_cell() {
    let grid = test_grid();
    let path = temp_store("warm");
    std::fs::remove_file(&path).ok();

    let mut store = ResultStore::open(&path).expect("open store");
    let cold = run_sweep(
        &grid,
        &mut store,
        &SweepOptions {
            jobs: 4,
            ..Default::default()
        },
    )
    .expect("cold sweep");
    assert_eq!(cold.stats.executed, grid.scenarios.len());
    assert_eq!(cold.stats.cache_hits, 0);
    drop(store);

    // Fresh process-equivalent: reload the store from disk.
    let mut store = ResultStore::open(&path).expect("reopen store");
    assert_eq!(store.len(), grid.scenarios.len());
    let warm = run_sweep(
        &grid,
        &mut store,
        &SweepOptions {
            jobs: 4,
            ..Default::default()
        },
    )
    .expect("warm sweep");
    assert_eq!(
        warm.stats.executed, 0,
        "warm run must perform zero backend executions"
    );
    assert_eq!(warm.stats.cache_hits, grid.scenarios.len());
    assert_eq!(warm.records, cold.records);

    // And the rewritten file is unchanged byte-for-byte.
    let before = std::fs::read(&path).expect("store bytes");
    let mut store = ResultStore::open(&path).expect("reopen again");
    run_sweep(
        &grid,
        &mut store,
        &SweepOptions {
            jobs: 1,
            ..Default::default()
        },
    )
    .expect("second warm sweep");
    let after = std::fs::read(&path).expect("store bytes");
    assert_eq!(before, after);
    std::fs::remove_file(&path).ok();
}
