//! Sweep-engine integration contract: (a) the JSONL result store is
//! byte-identical whatever the worker-thread count — record content and
//! order depend only on the grid; (b) re-running against a warm store
//! performs zero backend executions, satisfying every cell from cache —
//! for tensor and loop-nest workloads alike.

use canon::sweep::engine::{run_sweep, SweepOptions};
use canon::sweep::scenario::{GridBuilder, OpTemplate, ScenarioGrid};
use canon::sweep::store::{RecordStatus, ResultStore};
use std::path::PathBuf;

fn test_grid() -> ScenarioGrid {
    // Three workload families (one banded) across all five architectures at
    // smoke shapes: 5 cells x 5 archs = 25 scenarios.
    GridBuilder::new()
        .workload(
            "GEMM",
            OpTemplate::Gemm {
                m: 64,
                k: 64,
                n: 32,
            },
        )
        .workload(
            "SpMM",
            OpTemplate::Spmm {
                m: 64,
                k: 64,
                n: 32,
            },
        )
        .workload(
            "Win",
            OpTemplate::Window {
                seq: 64,
                window_div: 8,
                head_dim: 32,
            },
        )
        .build()
}

fn temp_store(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "canon-sweep-determinism-{}-{name}.jsonl",
        std::process::id()
    ))
}

#[test]
fn thread_count_does_not_change_store_bytes() {
    let grid = test_grid();
    let path2 = temp_store("jobs2");
    let path8 = temp_store("jobs8");
    for (path, jobs) in [(&path2, 2), (&path8, 8)] {
        std::fs::remove_file(path).ok();
        let mut store = ResultStore::open(path).expect("open store");
        let out = run_sweep(
            &grid,
            &mut store,
            &SweepOptions {
                jobs,
                ..Default::default()
            },
        )
        .expect("sweep runs");
        assert_eq!(out.stats.total, grid.scenarios.len());
        assert_eq!(out.stats.executed, grid.scenarios.len());
    }
    let bytes2 = std::fs::read(&path2).expect("jobs=2 store");
    let bytes8 = std::fs::read(&path8).expect("jobs=8 store");
    assert!(!bytes2.is_empty());
    assert_eq!(
        bytes2, bytes8,
        "2-thread and 8-thread sweeps must produce byte-identical JSONL"
    );
    std::fs::remove_file(&path2).ok();
    std::fs::remove_file(&path8).ok();
}

#[test]
fn loop_workload_sweep_is_deterministic_and_cached() {
    // Two PolyBench kernels across all five architectures and two
    // geometries: the reconfigurable backends produce Ok records, the
    // systolic variants and ZeD produce Unsupported records — and both
    // kinds cache and replay byte-identically.
    let grid = GridBuilder::new()
        .workload(
            "PolyB-gemm",
            OpTemplate::Loop {
                name: "gemm",
                n: 16,
            },
        )
        .workload(
            "PolyB-jacobi-2d",
            OpTemplate::Loop {
                name: "jacobi-2d",
                n: 16,
            },
        )
        .geometries(&[(8, 8), (16, 16)])
        .build();
    assert_eq!(grid.scenarios.len(), 20);

    let paths = [temp_store("loop-jobs1"), temp_store("loop-jobs4")];
    let mut outcomes = Vec::new();
    for (path, jobs) in paths.iter().zip([1, 4]) {
        std::fs::remove_file(path).ok();
        let mut store = ResultStore::open(path).expect("open store");
        let out = run_sweep(
            &grid,
            &mut store,
            &SweepOptions {
                jobs,
                ..Default::default()
            },
        )
        .expect("loop sweep runs");
        // 2 kernels x 2 geometries x 3 tensor-only architectures.
        assert_eq!(out.stats.unsupported, 12);
        assert_eq!(out.stats.errors, 0);
        outcomes.push(out);
    }
    assert_eq!(outcomes[0].records, outcomes[1].records);
    let bytes: Vec<Vec<u8>> = paths.iter().map(|p| std::fs::read(p).unwrap()).collect();
    assert_eq!(bytes[0], bytes[1], "loop sweeps must be thread-invariant");

    for rec in &outcomes[0].records {
        let ok = rec.status == RecordStatus::Ok;
        let reconfigurable = rec.arch == "Canon" || rec.arch == "CGRA";
        assert_eq!(ok, reconfigurable, "{}/{}", rec.workload, rec.arch);
    }

    // Warm replay from disk: zero executions.
    let mut store = ResultStore::open(&paths[0]).expect("reopen");
    let warm = run_sweep(&grid, &mut store, &SweepOptions::default()).expect("warm loop sweep");
    assert_eq!(warm.stats.executed, 0);
    assert_eq!(warm.stats.cache_hits, grid.scenarios.len());
    for p in &paths {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn warm_store_hits_cache_for_every_cell() {
    let grid = test_grid();
    let path = temp_store("warm");
    std::fs::remove_file(&path).ok();

    let mut store = ResultStore::open(&path).expect("open store");
    let cold = run_sweep(
        &grid,
        &mut store,
        &SweepOptions {
            jobs: 4,
            ..Default::default()
        },
    )
    .expect("cold sweep");
    assert_eq!(cold.stats.executed, grid.scenarios.len());
    assert_eq!(cold.stats.cache_hits, 0);
    drop(store);

    // Fresh process-equivalent: reload the store from disk.
    let mut store = ResultStore::open(&path).expect("reopen store");
    assert_eq!(store.len(), grid.scenarios.len());
    let warm = run_sweep(
        &grid,
        &mut store,
        &SweepOptions {
            jobs: 4,
            ..Default::default()
        },
    )
    .expect("warm sweep");
    assert_eq!(
        warm.stats.executed, 0,
        "warm run must perform zero backend executions"
    );
    assert_eq!(warm.stats.cache_hits, grid.scenarios.len());
    assert_eq!(warm.records, cold.records);

    // And the rewritten file is unchanged byte-for-byte.
    let before = std::fs::read(&path).expect("store bytes");
    let mut store = ResultStore::open(&path).expect("reopen again");
    run_sweep(
        &grid,
        &mut store,
        &SweepOptions {
            jobs: 1,
            ..Default::default()
        },
    )
    .expect("second warm sweep");
    let after = std::fs::read(&path).expect("store bytes");
    assert_eq!(before, after);
    std::fs::remove_file(&path).ok();
}
