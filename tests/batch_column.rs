//! Batch fast-path differential: the column-vectorized sweep must be
//! **perf-only**.
//!
//! The fabric keeps the scalar per-PE sweep available
//! ([`Fabric::set_batching`]): these properties run the same random program
//! with the batch detector enabled and force-disabled and diff everything
//! the sweep can influence — the full [`RunReport`] (cycle counts, every
//! architectural counter, the stall breakdown), the south/east collector
//! sequences with their exit cycles, and the architectural trace event
//! streams. The only legitimate difference is the
//! `Stats::batched_pe_cycles` diagnostic itself (it *measures* which path
//! ran), so it is normalized to zero on both sides before comparing.
//!
//! A dense register-accumulation workload additionally pins that the
//! detector actually fires (a detector that never triggers would pass every
//! differential), and one large-tier golden pins the 64×64 geometry's cycle
//! count and result fingerprint with batching on.

use canon::arch::kernels::gemm::RegAccFsm;
use canon::arch::kernels::spmm::{build_row_streams, preload_b_tile, SpmmFsm};
use canon::arch::kernels::{run_kernel, KernelInput};
use canon::arch::stats::RunReport;
use canon::arch::trace::VecSink;
use canon::arch::{CanonConfig, Fabric};
use canon::sparse::{gen, Dense};
use canon::sweep::store::fnv1a64;
use proptest::prelude::*;

/// Builds an SpMM-shaped fabric over a random problem sized for the
/// geometry (the same construction `tests/event_wake.rs` uses). Rows
/// `0..regacc_rows` run the register-accumulation FSM, the rest the window
/// FSM — a mixed grid issues *different* MAC shapes per row group, which is
/// exactly the skewed-issue pattern the partial-prefix batch detector has
/// to handle (the all-or-nothing detector saw such columns as non-uniform).
/// `band_words` is the K-band depth per fabric row in dmem words — it sets
/// the MAC burst length per output row, and with it how often columns go
/// uniform.
fn spmm_fabric(
    rows: usize,
    cols: usize,
    m: usize,
    band_words: usize,
    sparsity: f64,
    depth: usize,
    seed: u64,
    regacc_rows: usize,
) -> Fabric {
    let cfg = CanonConfig {
        rows,
        cols,
        dmem_words: band_words.max(64),
        spad_entries: 16,
        ..CanonConfig::default()
    };
    let k = rows * band_words;
    let mut rng = gen::seeded_rng(seed);
    let a = gen::skewed_sparse(m, k, sparsity, 2.0, &mut rng);
    let b = Dense::random(k, cols * 4, &mut rng);
    let streams = build_row_streams(&a, rows).expect("K is a multiple of rows");
    let mut fabric = Fabric::new(&cfg, false);
    preload_b_tile(&mut fabric, &b, k / rows, 0).expect("tile fits");
    for (r, stream) in streams.into_iter().enumerate() {
        fabric.set_meta_stream(r, stream);
        if r < regacc_rows {
            fabric.set_program(r, RegAccFsm::new(m));
        } else {
            fabric.set_program(r, SpmmFsm::new(depth, m));
        }
    }
    fabric
}

/// The report with the scheduler diagnostic that *names* the executing path
/// zeroed out — everything else must match exactly.
fn normalized(mut report: RunReport) -> RunReport {
    report.stats.batched_pe_cycles = 0;
    report
}

fn assert_batch_invisible(batched: (&Fabric, RunReport), scalar: (&Fabric, RunReport)) {
    let (bf, br) = batched;
    let (sf, sr) = scalar;
    assert_eq!(sr.stats.batched_pe_cycles, 0, "disabled path still batched");
    assert_eq!(
        normalized(br),
        normalized(sr),
        "batch on/off reports diverged"
    );
    assert_eq!(
        bf.south_collected(),
        sf.south_collected(),
        "south collector sequence diverged"
    );
    assert_eq!(
        bf.east_collected(),
        sf.east_collected(),
        "east collector sequence diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random kernels and bands from 8×8 through 64×64 — including mixed
    /// grids whose leading rows run a different FSM (and so issue a
    /// different MAC shape) than the rest, the skewed-issue pattern the
    /// partial-prefix detector batches: the batch detector enabled vs
    /// force-disabled must produce identical reports, stall breakdowns,
    /// collector sequences, and architectural trace streams.
    #[test]
    fn batch_sweep_is_architecturally_invisible(
        seed in 0u64..10_000,
        rows_sel in 0usize..4,
        cols_sel in 0usize..4,
        m in 1usize..20,
        band_sel in 0usize..3,
        sparsity in 0.0f64..0.95,
        depth in 1usize..5,
        regacc_sel in 0u8..4,
    ) {
        let dims = [8usize, 16, 32, 64];
        let (rows, cols) = (dims[rows_sel], dims[cols_sel]);
        // All-window, all-regacc, and two skewed splits.
        let regacc_rows = [0, rows, rows / 2, rows / 4][regacc_sel as usize];
        // Deep bands are what make columns go uniform, but cap the total MAC
        // volume so traced runs stay fast at the big geometries.
        let mut band = [4usize, 16, 64][band_sel];
        if rows * cols * m * band > 2_000_000 {
            band = 4;
        }
        let mut batched = spmm_fabric(rows, cols, m, band, sparsity, depth, seed, regacc_rows);
        let mut scalar = spmm_fabric(rows, cols, m, band, sparsity, depth, seed, regacc_rows);
        scalar.set_batching(false);
        let (sink_b, sink_s) = (VecSink::default(), VecSink::default());
        batched.set_trace_sink(Box::new(sink_b.clone()));
        scalar.set_trace_sink(Box::new(sink_s.clone()));
        let br = batched.run().expect("batched run drains");
        let sr = scalar.run().expect("scalar run drains");
        batched.take_trace_sink();
        scalar.take_trace_sink();
        assert_batch_invisible((&batched, br), (&scalar, sr));
        // Byte-identical architectural event streams: the batch pass must
        // emit every commit event the scalar sweep would, in the same
        // order. (The RunEnd footer carries the diagnostic and is excluded
        // with the other scheduler records.)
        let events_b = sink_b.take_events();
        let events_s = sink_s.take_events();
        let arch_b: Vec<_> = events_b.iter().filter(|e| e.is_architectural()).collect();
        let arch_s: Vec<_> = events_s.iter().filter(|e| e.is_architectural()).collect();
        prop_assert_eq!(arch_b, arch_s, "architectural trace streams diverged");
    }
}

/// A dense register-accumulation run must actually take the fast path — a
/// detector that never fires would pass every differential above. Dense
/// bands keep every row issuing the same MAC shape in lockstep, which is
/// exactly the per-column uniformity the detector looks for.
#[test]
fn dense_regacc_exercises_the_batch_path() {
    let mut fabric = spmm_fabric(8, 8, 16, 64, 0.0, 4, 7, 8);
    let report = fabric.run().expect("dense run drains");
    assert!(
        report.stats.batched_pe_cycles > 0,
        "batch detector never fired on a dense uniform workload"
    );
    // Deep dense bands should batch a majority of the swept work, not just
    // a stray column — guard the fast path's reach, not only its existence.
    assert!(report.stats.batched_pe_cycles * 2 >= report.stats.active_pe_cycles);
}

/// A mixed grid — half the rows issuing `MacS → Reg`, half `MacS → Spad` —
/// never goes fully uniform, so the all-or-nothing detector would batch
/// nothing; the partial-prefix detector must still vectorize the uniform
/// leading rows. (The proptest above pins that doing so changes nothing
/// architectural.)
#[test]
fn mixed_grid_batches_the_uniform_prefix() {
    let mut fabric = spmm_fabric(16, 8, 16, 64, 0.0, 4, 7, 8);
    let report = fabric.run().expect("mixed run drains");
    assert!(
        report.stats.batched_pe_cycles > 0,
        "prefix detector never fired on a half-uniform grid"
    );
    // The run must also never have been fully uniform — otherwise this test
    // degenerates into the dense one above.
    assert_eq!(
        report.stats.replayed_cycles, 0,
        "mixed grid went fully uniform"
    );
}

/// FNV-1a over the little-endian result matrix — byte-identical outputs.
fn result_fp(result: &Dense) -> u64 {
    let mut bytes = Vec::with_capacity(result.as_slice().len() * 4);
    for &v in result.as_slice() {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    fnv1a64(&bytes)
}

/// Large-tier golden: one 64×64 GEMM with a deep, large-tier K band
/// (K = 16384, 256 dmem words per fabric row), batching on (the default).
/// Pins the cycle count, MAC count, and result fingerprint at the `large`
/// geometry, and that the batch path carries a meaningful share of the
/// swept PE work there.
#[test]
fn gemm_64x64_large_tier_golden() {
    let cfg = CanonConfig::default().with_geometry(64, 64);
    let mut rng = gen::seeded_rng(21);
    let a = Dense::random(8, 16384, &mut rng);
    let b = Dense::random(16384, 256, &mut rng);
    let input = KernelInput::Gemm { a, b };
    let out = run_kernel(&cfg, &input).expect("large GEMM maps");
    assert_eq!(out.report.cycles, 2373, "cycle count drifted");
    assert_eq!(out.report.stats.mac_instrs, 8_388_608);
    assert!(
        out.report.stats.batched_pe_cycles * 2 >= out.report.stats.active_pe_cycles,
        "large-tier GEMM lost the batch fast path"
    );
    assert_eq!(
        result_fp(&out.result),
        0x4f3d_9722_e307_3245,
        "result drifted"
    );
}
