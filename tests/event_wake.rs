//! Wake-correctness differential: the event-driven orchestrator engine must
//! fire on exactly the cycles the polling engine would.
//!
//! The fabric keeps the pre-event polling engine available as a shadow
//! ([`Fabric::set_polling`]): every live row is stepped every cycle and
//! pure waits never park. These properties run the same random program on
//! both engines and diff everything the orchestrators' decisions can
//! influence — cycle counts, every architectural counter (including the
//! lazily-settled `orch_steps` / `stall_cycles` / bubble latches of parked
//! windows), and the full south/east collector sequences with their exit
//! cycles. A missed wake shows up as a deadlock or a cycle-count drift; a
//! spurious decision as a counter or collector diff.
//!
//! Shapes are chosen to exercise every wake source: shallow scratchpad
//! windows force credit stalls (timer wakes), skewed streams drain rows at
//! different times (done-row sleeps + message-driven re-wakes), bypass
//! chains exercise the `msg_slot_free` slot wakes, and SDDMM's north-edge
//! feed exercises the link wakes on `north_tokens`.

use canon::arch::isa::{Vector, LANES};
use canon::arch::kernels::gemm::RegAccFsm;
use canon::arch::kernels::sddmm::{ColPartition, SddmmFsm, SddmmMapping};
use canon::arch::kernels::spmm::{build_row_streams, preload_b_tile, SpmmFsm};
use canon::arch::noc::TaggedVector;
use canon::arch::orchestrator::assembler;
use canon::arch::orchestrator::MetaToken;
use canon::arch::stats::RunReport;
use canon::arch::trace::{replay_stats, VecSink};
use canon::arch::{CanonConfig, Fabric};
use canon::sparse::{gen, Dense};
use proptest::prelude::*;

/// Which orchestrator program drives the west-streamed fabric rows — the
/// differential must cover every in-tree program family's stall/park paths.
#[derive(Debug, Clone, Copy)]
enum ProgramKind {
    /// Native SpMM window FSM (scratchpad psums, bypass chains).
    Spmm,
    /// Register-accumulation FSM (GEMM / N:M): flush every row end, every
    /// upstream psum bypasses — its stalls hold a deliverable message.
    RegAcc,
    /// The SpMM microcode assembled to a LUT bitstream and interpreted by
    /// the Fig 5 datapath (cycle-identical to the native FSM).
    Lut,
}

/// Builds an SpMM-shaped fabric over a random problem sized for the
/// geometry, rows driven by `kind`. `depth` in 1..=4 keeps the psum window
/// shallow so credit back-pressure (the canonical parked wait) actually
/// occurs.
fn spmm_fabric(
    rows: usize,
    cols: usize,
    m: usize,
    sparsity: f64,
    depth: usize,
    seed: u64,
    kind: ProgramKind,
) -> Fabric {
    let cfg = CanonConfig {
        rows,
        cols,
        dmem_words: 64,
        spad_entries: 16,
        ..CanonConfig::default()
    };
    let k = rows * 4;
    let mut rng = gen::seeded_rng(seed);
    let a = gen::skewed_sparse(m, k, sparsity, 2.0, &mut rng);
    let b = Dense::random(k, cols * 4, &mut rng);
    let streams = build_row_streams(&a, rows).expect("K is a multiple of rows");
    let mut fabric = Fabric::new(&cfg, false);
    preload_b_tile(&mut fabric, &b, k / rows, 0).expect("tile fits");
    for (r, stream) in streams.into_iter().enumerate() {
        fabric.set_meta_stream(r, stream);
        match kind {
            ProgramKind::Spmm => fabric.set_program(r, SpmmFsm::new(depth, m)),
            ProgramKind::RegAcc => fabric.set_program(r, RegAccFsm::new(m)),
            ProgramKind::Lut => fabric.set_program(
                r,
                assembler::spmm_fsm_spec(depth, m)
                    .into_program()
                    .expect("spmm spec assembles"),
            ),
        }
    }
    fabric
}

/// Asserts two engines produced identical architectural outcomes. The
/// scheduler diagnostics (`active_pe_cycles`, `orch_polls_skipped`,
/// `wake_events`) are *expected* to differ — they measure work performed,
/// and performing less of it is the event engine's purpose.
fn assert_equivalent(event: (&Fabric, &RunReport), polling: (&Fabric, &RunReport)) {
    let (ef, er) = event;
    let (pf, pr) = polling;
    assert_eq!(er.cycles, pr.cycles, "cycle count diverged");
    let (e, p) = (&er.stats, &pr.stats);
    assert_eq!(e.instrs_executed, p.instrs_executed, "instruction latches");
    assert_eq!(e.compute_instrs, p.compute_instrs);
    assert_eq!(e.mac_instrs, p.mac_instrs);
    assert_eq!(e.dmem_reads, p.dmem_reads);
    assert_eq!(e.dmem_writes, p.dmem_writes);
    assert_eq!(e.spad_reads, p.spad_reads);
    assert_eq!(e.spad_writes, p.spad_writes);
    assert_eq!(e.noc_hops, p.noc_hops);
    assert_eq!(e.orch_steps, p.orch_steps, "orchestrator fire cycles");
    assert_eq!(e.orch_transitions, p.orch_transitions);
    assert_eq!(e.orch_messages, p.orch_messages);
    assert_eq!(e.stall_cycles, p.stall_cycles, "stall accounting");
    assert_eq!(e.stall_breakdown, p.stall_breakdown, "stall attribution");
    assert_eq!(e.meta_tokens, p.meta_tokens);
    assert_eq!(e.offchip_read_bytes, p.offchip_read_bytes);
    assert_eq!(e.offchip_write_bytes, p.offchip_write_bytes);
    // Collector sequences pin the *when* of every decision: an instruction
    // issued one cycle late by a missed wake shifts its exit cycle.
    assert_eq!(
        ef.south_collected(),
        pf.south_collected(),
        "south collector sequence diverged"
    );
    assert_eq!(
        ef.east_collected(),
        pf.east_collected(),
        "east collector sequence diverged"
    );
}

/// Builds an SDDMM fabric (the construction `run_sddmm` performs, at one
/// small fixed geometry): stationary `B` tiles, north-edge `A` feeders —
/// the feeder-token wake path — and `SddmmFsm` rows whose `LoadA` waits
/// stall on `north_tokens`.
fn sddmm_fabric(m: usize, mask_density: f64, seed: u64) -> Fabric {
    let (rows, cols) = (2usize, 2usize);
    let (n, k) = (rows * 2, cols * LANES); // H = 2, W = 1
    let (h, w) = (n / rows, k / (cols * LANES));
    let cfg = CanonConfig {
        rows,
        cols,
        dmem_words: 16,
        spad_entries: 8,
        ..CanonConfig::default()
    };
    let mut rng = gen::seeded_rng(seed);
    let a = Dense::random(m, k, &mut rng);
    let b = Dense::random(n, k, &mut rng);
    let mask = gen::random_mask(m, n, mask_density, &mut rng);
    let mut fabric = Fabric::new(&cfg, true);
    for yy in 0..rows {
        for xx in 0..cols {
            let mut words = Vec::new();
            for hh in 0..h {
                for ww in 0..w {
                    let mut lanes = [0; LANES];
                    for (v, lane) in lanes.iter_mut().enumerate() {
                        *lane = b[(yy * h + hh, (ww * cols + xx) * LANES + v)];
                    }
                    words.push(Vector(lanes));
                }
            }
            fabric.pe_mut(yy, xx).dmem.preload(0, &words);
        }
    }
    for xx in 0..cols {
        let mut tokens = Vec::new();
        for mm in 0..m {
            for ww in 0..w {
                let mut lanes = [0; LANES];
                for (v, lane) in lanes.iter_mut().enumerate() {
                    *lane = a[(mm, (ww * cols + xx) * LANES + v)];
                }
                tokens.push(TaggedVector {
                    value: Vector(lanes),
                    tag: (mm * w + ww) as u32,
                });
            }
        }
        fabric.set_feeder(xx, tokens);
    }
    for yy in 0..rows {
        let mut stream = Vec::new();
        for mm in 0..m {
            for col in mask.row_iter(mm) {
                if col >= yy * h && col < (yy + 1) * h {
                    stream.push(MetaToken::MaskPos {
                        row: mm as u32,
                        col: (col - yy * h) as u32,
                    });
                }
            }
            stream.push(MetaToken::MRowEnd { row: mm as u32 });
        }
        stream.push(MetaToken::End);
        fabric.set_meta_stream(yy, stream);
        fabric.set_program(yy, SddmmFsm::new(w, m, n, yy * h, 1, 8, yy + 1 < rows));
    }
    fabric
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, ..ProptestConfig::default() })]

    /// SpMM under random geometry/sparsity/skew with a shallow window:
    /// exercises credit-stall parking, timer wakes, done-row sleeps, and
    /// bypass slot wakes.
    #[test]
    fn event_engine_matches_polling_on_spmm(
        seed in 0u64..10_000,
        rows in 2usize..8,
        cols in 2usize..8,
        m in 1usize..24,
        sparsity in 0.0f64..0.95,
        depth in 1usize..5,
        kind_sel in 0u8..3,
    ) {
        let kind = match kind_sel {
            0 => ProgramKind::Spmm,
            1 => ProgramKind::RegAcc,
            _ => ProgramKind::Lut,
        };
        let mut event = spmm_fabric(rows, cols, m, sparsity, depth, seed, kind);
        let mut polling = spmm_fabric(rows, cols, m, sparsity, depth, seed, kind);
        polling.set_polling(true);
        let (sink_e, sink_p) = (VecSink::default(), VecSink::default());
        event.set_trace_sink(Box::new(sink_e.clone()));
        polling.set_trace_sink(Box::new(sink_p.clone()));
        let er = event.run().expect("event engine drains");
        let pr = polling.run().expect("polling engine drains");
        event.take_trace_sink();
        polling.take_trace_sink();
        // The event engine skipped polls without skipping decisions.
        assert_equivalent((&event, &er), (&polling, &pr));
        prop_assert!(er.stats.wake_events > 0, "no wake events recorded");
        prop_assert_eq!(pr.stats.orch_polls_skipped, 0, "polling engine must not skip");
        // Both engines must emit byte-identical *architectural* event
        // streams — parked windows coalesce into the same wait spans the
        // polling engine records step by step. (Scheduler diagnostics —
        // RowWake/RowPark/RunEnd — legitimately differ.)
        let events_e = sink_e.take_events();
        let events_p = sink_p.take_events();
        let arch_e: Vec<_> = events_e.iter().filter(|e| e.is_architectural()).collect();
        let arch_p: Vec<_> = events_p.iter().filter(|e| e.is_architectural()).collect();
        prop_assert_eq!(arch_e, arch_p, "architectural trace streams diverged");
        // And each stream must replay into its own engine's exact report.
        prop_assert_eq!(replay_stats(&events_e), er.clone(), "event-engine trace replay");
        prop_assert_eq!(replay_stats(&events_p), pr.clone(), "polling-engine trace replay");
    }

    /// SDDMM with north-edge feeders: pins the feeder-token and
    /// `north_tokens` link-wake paths cycle-exactly (a feeder wake firing
    /// one cycle late shifts east-collector exit cycles).
    #[test]
    fn event_engine_matches_polling_on_sddmm_feeders(
        seed in 0u64..10_000,
        m in 1usize..12,
        density in 0.0f64..1.0,
    ) {
        let mut event = sddmm_fabric(m, density, seed);
        let mut polling = sddmm_fabric(m, density, seed);
        polling.set_polling(true);
        let (sink_e, sink_p) = (VecSink::default(), VecSink::default());
        event.set_trace_sink(Box::new(sink_e.clone()));
        polling.set_trace_sink(Box::new(sink_p.clone()));
        let er = event.run().expect("event engine drains");
        let pr = polling.run().expect("polling engine drains");
        event.take_trace_sink();
        polling.take_trace_sink();
        assert_equivalent((&event, &er), (&polling, &pr));
        let events_e = sink_e.take_events();
        let arch_e: Vec<_> = events_e.iter().filter(|e| e.is_architectural()).collect();
        let arch_p_events = sink_p.take_events();
        let arch_p: Vec<_> = arch_p_events.iter().filter(|e| e.is_architectural()).collect();
        prop_assert_eq!(arch_e, arch_p, "architectural trace streams diverged");
        prop_assert_eq!(replay_stats(&events_e), er.clone(), "event-engine trace replay");
    }
}

/// SDDMM end to end through the kernel mapper (which owns its fabric, so
/// no polling twin exists here — the engine differential for the feeder
/// paths is `event_engine_matches_polling_on_sddmm_feeders` above): the
/// event-engine result must match the reference, and the `LoadA` stall
/// path must actually have parked rows.
#[test]
fn sddmm_kernel_parks_on_loada_stalls_and_stays_exact() {
    let mut rng = gen::seeded_rng(99);
    let a = Dense::random(16, 64, &mut rng);
    let b = Dense::random(16, 64, &mut rng);
    let mask = gen::random_mask(16, 16, 0.6, &mut rng);
    let mapping = SddmmMapping {
        spad_depth: 16,
        partition: ColPartition::Block,
    };
    let out =
        canon::arch::kernels::sddmm::run_sddmm(&CanonConfig::default(), &mapping, &mask, &a, &b)
            .expect("sddmm maps");
    assert_eq!(out.result, canon::sparse::reference::sddmm(&mask, &a, &b));
    // SDDMM stalls on A-token availability: the event engine must have
    // parked (skipped polls) and still recorded the exact stall count.
    assert!(out.report.stats.stall_cycles > 0, "expected LoadA stalls");
    assert!(
        out.report.stats.orch_polls_skipped > 0,
        "expected parked rows on the stall path"
    );
}

/// A deliberately starved fabric: one row stalls forever on a credit that
/// never comes (its southern neighbour never pops). The event engine parks
/// the row and must still hit the watchdog at the same cycle budget as the
/// polling engine — a parked row is asleep, not forgotten.
#[test]
fn starved_row_still_deadlocks_identically() {
    let mk = || {
        let cfg = CanonConfig {
            rows: 2,
            cols: 2,
            dmem_words: 8,
            spad_entries: 4,
            watchdog_factor: 2,
            watchdog_slack: 64,
            ..CanonConfig::default()
        };
        let mut f = Fabric::new(&cfg, false);
        // Row 0: a window-1 FSM over two output rows with an immediate
        // row-end flood; row 1 has no program, so credits for row 0 are
        // returned only when row 1's PEs pop — which never happens.
        use canon::arch::orchestrator::MetaToken;
        f.set_meta_stream(
            0,
            vec![
                MetaToken::RowEnd { row: 0 },
                MetaToken::RowEnd { row: 1 },
                MetaToken::End,
            ],
        );
        f.set_program(0, SpmmFsm::new(1, 2));
        f
    };
    let mut event = mk();
    let mut polling = mk();
    polling.set_polling(true);
    let ee = event.run().expect_err("starved event fabric deadlocks");
    let pe = polling.run().expect_err("starved polling fabric deadlocks");
    // Same failure at the same watchdog cycle.
    assert_eq!(format!("{ee}"), format!("{pe}"));
}
