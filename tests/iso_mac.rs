//! Iso-MAC and workload-coverage contract of the geometry-parameterized
//! sweep (§5's Table 1 parity requirement, generalized to every geometry):
//!
//! * every backend at every swept geometry reports the same peak compute as
//!   a Canon fabric of that geometry (`rows × cols × LANES` scalar MACs);
//! * a multi-geometry grid emits baseline records at every geometry point,
//!   and geometry points do not share cache keys or cell labels;
//! * loop-nest workloads run on the reconfigurable architectures (Canon,
//!   CGRA) and are `Unsupported` on the dense/2:4 systolic arrays and ZeD —
//!   the `X` cells of Figs 12/13.

use canon::arch::{CanonConfig, LANES};
use canon::energy::Arch;
use canon::sweep::backend::{backend_for, BackendError};
use canon::sweep::engine::{run_sweep, SweepOptions};
use canon::sweep::scenario::{GridBuilder, OpTemplate};
use canon::sweep::store::{RecordStatus, ResultStore};
use canon::workloads::{LoopKernel, TensorOp, Workload};

const GEOMETRIES: [(usize, usize); 4] = [(4, 4), (8, 8), (8, 16), (16, 16)];

#[test]
fn every_backend_is_iso_mac_at_every_geometry() {
    let cfg = CanonConfig::default();
    for geometry in GEOMETRIES {
        let want = (geometry.0 * geometry.1 * LANES) as u64;
        assert_eq!(
            want,
            cfg.with_geometry(geometry.0, geometry.1).mac_units() as u64
        );
        for arch in Arch::all() {
            let backend = backend_for(arch, geometry, &cfg);
            assert_eq!(
                backend.peak_macs_per_cycle(),
                want,
                "{} must be provisioned iso-MAC at {geometry:?}",
                backend.name()
            );
        }
    }
}

#[test]
fn loop_nests_unsupported_on_systolic_and_zed_backends() {
    let cfg = CanonConfig::default();
    let workload = Workload::Loop(LoopKernel {
        name: "jacobi-2d",
        n: 16,
    });
    for arch in Arch::all() {
        let backend = backend_for(arch, (8, 8), &cfg);
        let reconfigurable = matches!(arch, Arch::Canon | Arch::Cgra);
        assert_eq!(backend.supports(&workload), reconfigurable, "{arch:?}");
        match backend.run(&workload, 7) {
            Ok(rec) => {
                assert!(reconfigurable, "{arch:?} must not run loop nests");
                assert!(rec.cycles > 0 && rec.energy_pj > 0.0);
                assert!((0.0..=1.0).contains(&rec.utilization));
            }
            Err(BackendError::Unsupported) => {
                assert!(!reconfigurable, "{arch:?} must run loop nests");
            }
            Err(e) => panic!("{arch:?}: {e}"),
        }
    }
}

#[test]
fn multi_geometry_grid_emits_baseline_records_at_every_geometry() {
    let grid = GridBuilder::new()
        .workload(
            "GEMM",
            OpTemplate::Gemm {
                m: 64,
                k: 64,
                n: 32,
            },
        )
        .geometries(&[(8, 8), (16, 16)])
        .build();
    let mut store = ResultStore::in_memory();
    let out = run_sweep(&grid, &mut store, &SweepOptions::default()).expect("sweep runs");
    assert_eq!(out.records.len(), 10);

    for geometry in [(8usize, 8usize), (16, 16)] {
        for arch in Arch::all() {
            let rec = out
                .records
                .iter()
                .find(|r| (r.rows, r.cols) == geometry && r.arch == arch.label())
                .unwrap_or_else(|| panic!("no record for {arch:?} at {geometry:?}"));
            assert_eq!(rec.status, RecordStatus::Ok, "{arch:?} at {geometry:?}");
            assert!(rec.cycles > 0);
        }
    }
    // Cache keys and cell labels must distinguish the geometry points.
    let mut keys: Vec<&str> = out.records.iter().map(|r| r.key.as_str()).collect();
    keys.sort_unstable();
    keys.dedup();
    assert_eq!(keys.len(), 10, "keys must be unique across geometries");
    let labels: Vec<String> = out.records.iter().map(|r| r.cell_label()).collect();
    assert!(labels.contains(&"GEMM@8x8".to_string()));
    assert!(labels.contains(&"GEMM@16x16".to_string()));

    // A baseline run at the larger iso-MAC provisioning must not be slower.
    let cycles_at = |geometry: (usize, usize)| {
        out.records
            .iter()
            .find(|r| (r.rows, r.cols) == geometry && r.arch == Arch::Systolic.label())
            .map(|r| r.cycles)
            .expect("systolic record")
    };
    assert!(cycles_at((16, 16)) <= cycles_at((8, 8)));
}

#[test]
fn geometry_scales_canon_tensor_runs() {
    // The same tensor cell through backend_for at two geometries: the
    // 16x16 fabric finishes the (mapping-friendly) workload faster.
    let cfg = CanonConfig::default();
    let op = Workload::Tensor(TensorOp::Spmm {
        m: 64,
        k: 64,
        n: 64,
        sparsity: 0.45,
    });
    let small = backend_for(Arch::Canon, (8, 8), &cfg).run(&op, 3).unwrap();
    let large = backend_for(Arch::Canon, (16, 16), &cfg)
        .run(&op, 3)
        .unwrap();
    assert!(
        large.cycles < small.cycles,
        "16x16 {} vs 8x8 {}",
        large.cycles,
        small.cycles
    );
}
