//! Trace exactness: a captured event stream must reconstruct the run's
//! `Stats` byte-for-byte, and the per-cause stall breakdown must sum to
//! `stall_cycles` — on every in-tree kernel family, through the real kernel
//! mappers where possible.
//!
//! This is the observability layer's contract (`canon::arch::trace` module
//! docs): tracing is a *projection* of the run, not a second bookkeeping
//! system, so any drift between the recorded events and the engine's own
//! counters is a bug in one of them. The differential here catches both
//! directions — a missing event under-counts the replay, a spurious one
//! over-counts it.

use canon::arch::kernels::gemm::RegAccFsm;
use canon::arch::kernels::spmm::{build_row_streams, preload_b_tile, SpmmFsm};
use canon::arch::orchestrator::assembler;
use canon::arch::stats::{RunReport, StallCause};
use canon::arch::trace::{render_profile, replay_stats, write_chrome_trace, TraceEvent, VecSink};
use canon::arch::{CanonConfig, Fabric};
use canon::sparse::{gen, Dense};

/// Runs `fabric` with a sink attached, returning the run report and the
/// captured events (footer included).
fn traced_run(mut fabric: Fabric) -> (RunReport, Vec<TraceEvent>) {
    let sink = VecSink::default();
    fabric.set_trace_sink(Box::new(sink.clone()));
    let report = fabric.run().expect("fabric drains");
    fabric.take_trace_sink().expect("sink was attached");
    (report, sink.take_events())
}

/// The exactness contract for one captured run.
fn assert_replay_exact(report: &RunReport, events: &[TraceEvent]) {
    let replayed = replay_stats(events);
    // RunReport equality covers cycles, geometry, and every Stats counter
    // (wall_ns is deliberately excluded from RunReport equality).
    assert_eq!(&replayed, report, "trace replay diverged from the engine");
    // The breakdown partitions the stall count: every stall cycle has
    // exactly one cause.
    assert_eq!(
        report.stats.stall_breakdown.total(),
        report.stats.stall_cycles,
        "stall breakdown must sum to stall_cycles"
    );
    assert_eq!(replayed.stats.stall_breakdown, report.stats.stall_breakdown);
}

/// An SpMM fabric with a shallow psum window (forces credit and msg-slot
/// stalls) over a skewed sparse band.
fn spmm_fabric(depth: usize, seed: u64, lut: bool) -> Fabric {
    let cfg = CanonConfig {
        rows: 4,
        cols: 4,
        dmem_words: 64,
        spad_entries: 16,
        // Shallow link FIFOs keep southbound credits scarce, so the
        // shallow-window flush bursts actually hit credit back-pressure.
        link_fifo_depth: 4,
        ..CanonConfig::default()
    };
    let (m, k) = (24, 16);
    let mut rng = gen::seeded_rng(seed);
    let a = gen::skewed_sparse(m, k, 0.75, 2.0, &mut rng);
    let b = Dense::random(k, 16, &mut rng);
    let streams = build_row_streams(&a, cfg.rows).expect("K divisible by rows");
    let mut fabric = Fabric::new(&cfg, false);
    preload_b_tile(&mut fabric, &b, k / cfg.rows, 0).expect("tile fits");
    for (r, stream) in streams.into_iter().enumerate() {
        fabric.set_meta_stream(r, stream);
        if lut {
            fabric.set_program(
                r,
                assembler::spmm_fsm_spec(depth, m)
                    .into_program()
                    .expect("spmm spec assembles"),
            );
        } else {
            fabric.set_program(r, SpmmFsm::new(depth, m));
        }
    }
    fabric
}

#[test]
fn spmm_trace_replays_stats_exactly() {
    let (report, events) = traced_run(spmm_fabric(1, 11, false));
    assert!(report.stats.stall_cycles > 0, "window=1 must stall");
    assert_replay_exact(&report, &events);
    // The shallow window stalls on credits; attribution must see them.
    assert!(
        report.stats.stall_breakdown.get(StallCause::Credit) > 0,
        "expected credit-attributed stalls, got {:?}",
        report.stats.stall_breakdown
    );
}

#[test]
fn lut_program_trace_replays_stats_exactly() {
    // The assembled LUT interpreter is cycle-identical to the native FSM —
    // its trace must therefore replay exactly too, through the generic
    // microcode path rather than the native match arms.
    let (report, events) = traced_run(spmm_fabric(1, 11, true));
    assert_replay_exact(&report, &events);
    // And it must equal the native FSM's stream event for event.
    let (native_report, native_events) = traced_run(spmm_fabric(1, 11, false));
    assert_eq!(report, native_report);
    let arch: Vec<_> = events.iter().filter(|e| e.is_architectural()).collect();
    let native: Vec<_> = native_events
        .iter()
        .filter(|e| e.is_architectural())
        .collect();
    assert_eq!(arch, native, "LUT vs native trace streams diverged");
}

#[test]
fn gemm_trace_replays_stats_exactly() {
    let cfg = CanonConfig {
        rows: 4,
        cols: 4,
        dmem_words: 64,
        spad_entries: 16,
        ..CanonConfig::default()
    };
    let (m, k) = (10, 16);
    let mut rng = gen::seeded_rng(23);
    let a = gen::random_sparse(m, k, 0.8, &mut rng);
    let b = Dense::random(k, 16, &mut rng);
    let streams = build_row_streams(&a, cfg.rows).expect("K divisible by rows");
    let mut fabric = Fabric::new(&cfg, false);
    preload_b_tile(&mut fabric, &b, k / cfg.rows, 0).expect("tile fits");
    for (r, stream) in streams.into_iter().enumerate() {
        fabric.set_meta_stream(r, stream);
        fabric.set_program(r, RegAccFsm::new(m));
    }
    let (report, events) = traced_run(fabric);
    assert_replay_exact(&report, &events);
}

#[test]
fn sddmm_kernel_trace_replays_stats_exactly() {
    // Through the real SDDMM mapper: north-edge feeders, OperandWait
    // stalls on A-token availability, and east-edge collection.
    use canon::arch::kernels::sddmm::{run_sddmm_traced, ColPartition, SddmmMapping};
    let mut rng = gen::seeded_rng(7);
    let a = Dense::random(12, 32, &mut rng);
    let b = Dense::random(8, 32, &mut rng);
    let mask = gen::random_mask(12, 8, 0.5, &mut rng);
    let mapping = SddmmMapping {
        spad_depth: 8,
        partition: ColPartition::Block,
    };
    let sink = VecSink::default();
    let cfg = CanonConfig {
        rows: 2,
        cols: 4,
        dmem_words: 64,
        spad_entries: 16,
        ..CanonConfig::default()
    };
    let out = run_sddmm_traced(&cfg, &mapping, &mask, &a, &b, Some(Box::new(sink.clone())))
        .expect("sddmm maps");
    assert_eq!(out.result, canon::sparse::reference::sddmm(&mask, &a, &b));
    let events = sink.take_events();
    assert_replay_exact(&out.report, &events);
    assert!(
        out.report
            .stats
            .stall_breakdown
            .get(StallCause::OperandWait)
            > 0,
        "LoadA waits must be attributed to operand_wait, got {:?}",
        out.report.stats.stall_breakdown
    );
}

#[test]
fn mid_run_attach_still_balances_counter_totals() {
    // Attaching after some cycles loses the early per-step events but the
    // header snapshots the counter bases, so base + deltas still equals the
    // engine's NoC/off-chip totals.
    let mut fabric = spmm_fabric(4, 3, false);
    for _ in 0..20 {
        fabric.step().expect("step");
    }
    let sink = VecSink::default();
    fabric.set_trace_sink(Box::new(sink.clone()));
    let report = fabric.run().expect("drains");
    fabric.take_trace_sink();
    let replayed = replay_stats(&sink.take_events());
    assert_eq!(replayed.stats.noc_hops, report.stats.noc_hops);
    assert_eq!(
        replayed.stats.offchip_read_bytes,
        report.stats.offchip_read_bytes
    );
    assert_eq!(
        replayed.stats.offchip_write_bytes,
        report.stats.offchip_write_bytes
    );
    assert_eq!(replayed.cycles, report.cycles);
}

#[test]
fn exporters_cover_a_real_run() {
    let (report, events) = traced_run(spmm_fabric(1, 11, false));
    // Chrome trace: structurally valid JSON (object form, comma-separated
    // items) mentioning the run's tracks and stall causes.
    let mut json = Vec::new();
    write_chrome_trace(&events, &mut json).expect("in-memory write");
    let json = String::from_utf8(json).expect("utf8");
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.ends_with("]}"));
    assert!(json.contains("orchestrator rows"));
    assert!(json.contains("PE columns"));
    assert!(json.contains("\"name\":\"credit\""));
    assert!(json.matches("\"ph\":\"X\"").count() > 10);
    // Textual profile: mentions the geometry, the dominant stall cause and
    // the exact stall count.
    let profile = render_profile(&events);
    assert!(profile.contains("4x4 fabric"));
    assert!(profile.contains("credit"));
    assert!(profile.contains(&format!("stall cycles: {}", report.stats.stall_cycles)));
}
