//! Cross-crate consistency checks on the energy/EDP pipeline: measured
//! simulator activity must translate into energies with the structural
//! properties the evaluation relies on.

use canon::arch::kernels::gemm::run_gemm;
use canon::arch::kernels::spmm::{run_spmm, SpmmMapping};
use canon::arch::CanonConfig;
use canon::baselines::{Accelerator, Cgra, SystolicArray};
use canon::energy::{baseline_energy, canon_energy, edp, perf_per_watt, Arch};
use canon::sparse::{gen, Dense};

#[test]
fn canon_energy_is_positive_and_additive() {
    let mut rng = gen::seeded_rng(1);
    let a = gen::random_sparse(32, 64, 0.5, &mut rng);
    let b = Dense::random(64, 32, &mut rng);
    let out = run_spmm(&CanonConfig::default(), &SpmmMapping::default(), &a, &b).unwrap();
    let e = canon_energy(&out.report);
    assert!(e.total_pj() > 0.0);
    let sum: f64 = e.components.iter().map(|(_, v)| v).sum();
    assert!((sum - e.total_pj()).abs() < 1e-6);
    // Every named Fig 11 component exists.
    for name in [
        "data memory",
        "spad-read",
        "spad-write",
        "compute",
        "control & routing",
    ] {
        assert!(
            e.components.iter().any(|(n, _)| *n == name),
            "missing component {name}"
        );
    }
}

#[test]
fn sparser_input_costs_less_energy_on_canon() {
    let cfg = CanonConfig::default();
    let mut rng = gen::seeded_rng(2);
    let b = Dense::random(128, 64, &mut rng);
    let dense = gen::random_sparse(64, 128, 0.1, &mut rng);
    let sparse = gen::random_sparse(64, 128, 0.9, &mut rng);
    let ed = canon_energy(
        &run_spmm(&cfg, &SpmmMapping::default(), &dense, &b)
            .unwrap()
            .report,
    );
    let es = canon_energy(
        &run_spmm(&cfg, &SpmmMapping::default(), &sparse, &b)
            .unwrap()
            .report,
    );
    assert!(
        es.total_pj() < ed.total_pj() / 2.0,
        "90% sparse {} should be far below 10% sparse {}",
        es.total_pj(),
        ed.total_pj()
    );
}

#[test]
fn canon_gemm_energy_close_to_systolic() {
    // §6.1: "Under GEMM ... Canon consumes nearly the same power as the
    // systolic array, with only a slight overhead from control and routing."
    let mut rng = gen::seeded_rng(3);
    let a = Dense::random(64, 128, &mut rng);
    let b = Dense::random(128, 64, &mut rng);
    let canon = run_gemm(&CanonConfig::default(), &a, &b).unwrap();
    let ce = canon_energy(&canon.report);
    let sys = SystolicArray::default().gemm(64, 128, 64).unwrap();
    let se = baseline_energy(Arch::Systolic, &sys);
    let ratio = ce.total_pj() / se.total_pj();
    assert!(
        (0.5..=2.0).contains(&ratio),
        "canon/systolic GEMM energy ratio {ratio}"
    );
}

#[test]
fn cgra_perf_per_watt_below_canon_on_tensor_work() {
    let mut rng = gen::seeded_rng(4);
    let a = gen::random_sparse(64, 128, 0.5, &mut rng);
    let b = Dense::random(128, 64, &mut rng);
    let useful = a.nnz() as u64 * 64;
    let canon = run_spmm(&CanonConfig::default(), &SpmmMapping::default(), &a, &b).unwrap();
    let cp = perf_per_watt(
        useful,
        canon.report.cycles,
        canon_energy(&canon.report).total_pj(),
        1e9,
    );
    let cg = Cgra::default().spmm(&a, 64).unwrap();
    let gp = perf_per_watt(
        useful,
        cg.cycles,
        baseline_energy(Arch::Cgra, &cg).total_pj(),
        1e9,
    );
    assert!(cp > gp, "canon {cp} should beat cgra {gp}");
}

#[test]
fn edp_combines_energy_and_delay() {
    // Same energy, double delay → double EDP; same delay, double energy →
    // double EDP.
    assert_eq!(edp(10.0, 20, 1e9), 2.0 * edp(10.0, 10, 1e9));
    assert_eq!(edp(20.0, 10, 1e9), 2.0 * edp(10.0, 10, 1e9));
}
