//! Golden cycle-count invariance: the zero-allocation hot-path refactor
//! (lazy `ErrCtx` error context, ring-buffer links, in-place sink draining,
//! enum-dispatched row programs, rotating PE pipeline slots, shared operand
//! cache) must be **perf-only** — architectural behaviour is pinned here.
//!
//! The constants below were captured on the pre-refactor simulator (PR 2
//! head, commit `eeb8133`) for one GEMM, one SpMM and one SDDMM smoke
//! shape, plus one fabric-level run whose full south-collector sequence
//! (tag, lane, exit cycle, payload) is fingerprinted. Any divergence in
//! cycle counts, activity counters, results, or collector sequences fails
//! this suite.

use canon::arch::kernels::{run_kernel, KernelOutput};
use canon::arch::CanonConfig;
use canon::sparse::Dense;
use canon::sweep::backend::kernel_input;
use canon::sweep::store::fnv1a64;
use canon::workloads::TensorOp;
use canon_bench::bench::golden_spmm_fabric;

/// FNV-1a over the little-endian result matrix — byte-identical outputs.
fn result_fp(result: &Dense) -> u64 {
    let mut bytes = Vec::with_capacity(result.as_slice().len() * 4);
    for &v in result.as_slice() {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    fnv1a64(&bytes)
}

struct Golden {
    op: TensorOp,
    seed: u64,
    cycles: u64,
    instrs: u64,
    macs: u64,
    noc_hops: u64,
    stalls: u64,
    result_fp: u64,
}

fn run(golden: &Golden) -> KernelOutput {
    let input = kernel_input(&golden.op, golden.seed);
    run_kernel(&CanonConfig::default(), &input).expect("golden shape maps")
}

/// A 16×8 multi-row staggered-issue run, pinning the batched row-issue path
/// (active-set sweep + tri-state injection queue) at a non-default, taller
/// geometry — the 8×8 goldens alone would let a row-indexing bug that only
/// shows past row 7 slip through. Captured on the pre-refactor simulator
/// (PR 3 head, commit `e682a8f`): skewed 48×64 SpMM at seed 41, so rows
/// drain at different times and the active set shrinks mid-run.
#[test]
fn spmm_16x8_multi_row_golden() {
    let cfg = CanonConfig::default().with_geometry(16, 8);
    let mut rng = canon::sparse::gen::seeded_rng(41);
    let a = canon::sparse::gen::skewed_sparse(48, 64, 0.6, 2.0, &mut rng);
    let b = Dense::random(64, 32, &mut rng);
    let input = canon::arch::kernels::KernelInput::Spmm {
        a,
        b,
        mapping: Default::default(),
    };
    let out = run_kernel(&cfg, &input).expect("16x8 shape maps");
    assert_eq!(out.report.cycles, 328, "cycle count drifted");
    assert_eq!(out.report.stats.instrs_executed, 31032);
    assert_eq!(out.report.stats.mac_instrs, 11112);
    assert_eq!(out.report.stats.noc_hops, 15416);
    assert_eq!(out.report.stats.stall_cycles, 0);
    assert_eq!(out.report.stats.orch_steps, 3879);
    assert_eq!(result_fp(&out.result), 0x2f6094fb58ae9df8, "result drifted");
}

#[test]
fn gemm_golden_cycles_and_result() {
    check(&Golden {
        op: TensorOp::Gemm {
            m: 32,
            k: 32,
            n: 32,
        },
        seed: 11,
        cycles: 344,
        instrs: 14152,
        macs: 8192,
        noc_hops: 9216,
        stalls: 0,
        result_fp: 0x17ce2c8a6b0d0c57,
    });
}

#[test]
fn spmm_golden_cycles_and_result() {
    check(&Golden {
        op: TensorOp::Spmm {
            m: 32,
            k: 64,
            n: 32,
            sparsity: 0.6,
        },
        seed: 12,
        cycles: 282,
        instrs: 13424,
        macs: 7624,
        noc_hops: 4112,
        stalls: 0,
        result_fp: 0x6ee5d7aed34af86a,
    });
}

#[test]
fn sddmm_golden_cycles_and_result() {
    check(&Golden {
        op: TensorOp::SddmmUnstructured {
            seq: 32,
            head_dim: 32,
            sparsity: 0.5,
        },
        seed: 13,
        cycles: 242,
        instrs: 12592,
        macs: 4296,
        noc_hops: 6344,
        stalls: 176,
        result_fp: 0x6e76c7959a3fef83,
    });
}

fn check(golden: &Golden) {
    let out = run(golden);
    assert_eq!(out.report.cycles, golden.cycles, "cycle count drifted");
    assert_eq!(out.report.stats.instrs_executed, golden.instrs);
    assert_eq!(out.report.stats.mac_instrs, golden.macs);
    assert_eq!(out.report.stats.noc_hops, golden.noc_hops);
    assert_eq!(out.report.stats.stall_cycles, golden.stalls);
    assert_eq!(result_fp(&out.result), golden.result_fp, "result drifted");
}

/// Fabric-level run pinning the *full collected-entry sequence*: every
/// south-exiting value's tag, lane, exit cycle, and payload, in collection
/// order, hashed as one stream. The fabric is the same scenario `repro
/// bench` profiles for allocations (one shared constructor), so the
/// zero-allocation claim and this golden always describe the same run.
#[test]
fn fabric_spmm_collector_sequence_golden() {
    let mut fabric = golden_spmm_fabric();
    let report = fabric.run().unwrap();
    assert_eq!(report.cycles, 164, "cycle count drifted");
    assert_eq!(fabric.south_collected().len(), 584);
    let mut bytes = Vec::new();
    for e in fabric.south_collected() {
        bytes.extend_from_slice(&e.tag.to_le_bytes());
        bytes.extend_from_slice(&(e.lane as u64).to_le_bytes());
        bytes.extend_from_slice(&e.cycle.to_le_bytes());
        for lane in e.value.0 {
            bytes.extend_from_slice(&lane.to_le_bytes());
        }
    }
    assert_eq!(
        fnv1a64(&bytes),
        0x0eafeec65aa2f469,
        "collected-entry sequence drifted"
    );
}
