//! Fault-tolerance integration contract over the whole sweep stack:
//! (a) a sweep carrying injected panic + deadlock + timeout faults
//! completes, stores every healthy cell, quarantines exactly the faulted
//! ones as structured failure records, and produces byte-identical stores
//! at any worker count; (b) a sweep resumed from a partial (interrupted)
//! journal converges to the byte-identical store of an uninterrupted run;
//! (c) a torn journal tail — the residue of a mid-write crash — is
//! detected on open and healed by the next sweep.

use canon::arch::fault::{FaultAction, FaultPlan};
use canon::sweep::engine::{run_sweep, SweepOptions};
use canon::sweep::report::quarantine_report;
use canon::sweep::scenario::{GridBuilder, OpTemplate, ScenarioGrid};
use canon::sweep::store::{CellFailure, RecordStatus, ResultStore};
use std::path::PathBuf;
use std::time::Duration;

fn test_grid() -> ScenarioGrid {
    // Three workload families (SpMM expands into its sparsity bands)
    // across all five architectures: 5 cells x 5 archs = 25 scenarios.
    // Canon cells sit at scenario indices 4, 9, 14, ... (arch order puts
    // Canon last within each cell).
    GridBuilder::new()
        .workload(
            "GEMM",
            OpTemplate::Gemm {
                m: 64,
                k: 64,
                n: 32,
            },
        )
        .workload(
            "SpMM",
            OpTemplate::Spmm {
                m: 64,
                k: 64,
                n: 32,
            },
        )
        .workload(
            "Win",
            OpTemplate::Window {
                seq: 64,
                window_div: 8,
                head_dim: 32,
            },
        )
        .build()
}

/// One injected fault of each deterministic kind, on three Canon cells:
/// panic (GEMM), withheld credits → deadlock (SpMM-S1), slow cell under a
/// wall budget → timeout (SpMM-S2). The wall budget is global, so it must
/// leave the deadlock cell room to reach its (cycle-deterministic)
/// watchdog and every healthy cell room to finish — yet sit far below one
/// injected sleep, so the timeout fires at the first post-sleep check and
/// its partial cycle count — hence the store bytes — stays deterministic
/// despite depending on a wall clock.
fn acceptance_plan() -> FaultPlan {
    FaultPlan::new()
        .with_fault(4, FaultAction::PanicAt { cycle: 50 })
        .with_fault(9, FaultAction::WithholdCredits)
        .with_fault(
            14,
            FaultAction::SlowCycle {
                nanos: 5_000_000_000,
            },
        )
}

fn fault_options(jobs: usize) -> SweepOptions {
    SweepOptions {
        jobs,
        fault_plan: acceptance_plan(),
        cell_wall_budget: Some(Duration::from_secs(2)),
        ..Default::default()
    }
}

fn temp_store(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "canon-fault-tolerance-{}-{name}.jsonl",
        std::process::id()
    ))
}

#[test]
fn injected_fault_sweep_quarantines_and_is_jobs_invariant() {
    let grid = test_grid();
    let path1 = temp_store("jobs1");
    let path4 = temp_store("jobs4");
    for (path, jobs) in [(&path1, 1), (&path4, 4)] {
        std::fs::remove_file(path).ok();
        let mut store = ResultStore::open(path).expect("open store");
        let out = run_sweep(&grid, &mut store, &fault_options(jobs)).expect("sweep runs");
        // The sweep completes: every cell resolved, three quarantined.
        assert!(!out.stats.interrupted);
        assert_eq!(out.records.len(), grid.scenarios.len());
        assert_eq!(out.stats.failed, 3, "jobs={jobs}: {:?}", out.stats);
        let failure = |idx: usize| match &out.records[idx].status {
            RecordStatus::Failed(f) => f.clone(),
            other => panic!("cell {idx} should be quarantined, got {other:?}"),
        };
        assert!(matches!(failure(4), CellFailure::Panic { message }
                if message.contains("injected fault")));
        assert!(matches!(failure(9), CellFailure::Deadlock { .. }));
        assert!(matches!(failure(14), CellFailure::Timeout { detail }
                if detail.contains("wall-clock")));
        // Every non-faulted cell resolved healthily (Ok or Unsupported —
        // never an error or a lost record).
        for (idx, rec) in out.records.iter().enumerate() {
            if ![4, 9, 14].contains(&idx) {
                assert!(
                    matches!(rec.status, RecordStatus::Ok | RecordStatus::Unsupported),
                    "cell {idx}: {:?}",
                    rec.status
                );
            }
        }
        let report = quarantine_report(&out.records).expect("three quarantined cells");
        assert!(report.contains("Quarantined cells: 3"), "{report}");
    }
    // Store bytes are identical whatever the worker count, failure
    // records included.
    let b1 = std::fs::read(&path1).expect("jobs1 store");
    let b4 = std::fs::read(&path4).expect("jobs4 store");
    assert!(!b1.is_empty());
    assert_eq!(b1, b4, "faulted stores must be jobs-invariant");
    std::fs::remove_file(&path1).ok();
    std::fs::remove_file(&path4).ok();
}

#[test]
fn resume_from_partial_journal_converges_to_cold_store() {
    let grid = test_grid();
    let cold_path = temp_store("resume-cold");
    let partial_path = temp_store("resume-partial");
    for p in [&cold_path, &partial_path] {
        std::fs::remove_file(p).ok();
    }
    // Uninterrupted reference run.
    let mut cold = ResultStore::open(&cold_path).expect("open cold");
    run_sweep(&grid, &mut cold, &SweepOptions::default()).expect("cold sweep");
    let cold_bytes = std::fs::read(&cold_path).expect("cold bytes");

    // Simulate an interrupted run: keep only a prefix of the journal
    // lines (what an early SIGKILL would have left behind).
    let text = String::from_utf8(cold_bytes.clone()).expect("utf8 store");
    let prefix: String = text.lines().take(6).map(|l| format!("{l}\n")).collect();
    std::fs::write(&partial_path, prefix).expect("write partial journal");

    // The resumed run satisfies the journaled cells from cache and
    // executes only the missing ones; the rewritten store is
    // byte-identical to the uninterrupted one.
    let mut partial = ResultStore::open(&partial_path).expect("open partial");
    let out = run_sweep(&grid, &mut partial, &SweepOptions::default()).expect("resume sweep");
    assert!(out.stats.cache_hits > 0, "{:?}", out.stats);
    assert!(out.stats.executed < grid.scenarios.len(), "{:?}", out.stats);
    let resumed_bytes = std::fs::read(&partial_path).expect("resumed bytes");
    assert_eq!(resumed_bytes, cold_bytes, "resume must converge");
    std::fs::remove_file(&cold_path).ok();
    std::fs::remove_file(&partial_path).ok();
}

#[test]
fn torn_journal_tail_is_recovered_and_healed_by_next_sweep() {
    let grid = test_grid();
    let cold_path = temp_store("torn-cold");
    let torn_path = temp_store("torn");
    for p in [&cold_path, &torn_path] {
        std::fs::remove_file(p).ok();
    }
    let mut cold = ResultStore::open(&cold_path).expect("open cold");
    run_sweep(&grid, &mut cold, &SweepOptions::default()).expect("cold sweep");
    let cold_bytes = std::fs::read(&cold_path).expect("cold bytes");

    // Cut the file mid-record: a crash between `write` and the final
    // newline leaves an unterminated, unparseable tail.
    let cut = cold_bytes.len() - 40;
    std::fs::write(&torn_path, &cold_bytes[..cut]).expect("write torn store");
    let mut torn = ResultStore::open(&torn_path).expect("open survives torn tail");
    let recovery = torn.recovery();
    assert!(recovery.has_damage(), "{recovery:?}");
    assert!(recovery.torn_tail_bytes > 0, "{recovery:?}");
    assert_eq!(recovery.unreadable_lines, 0, "{recovery:?}");

    // Re-sweeping heals: the torn record re-executes, the canonical
    // rewrite restores the exact uninterrupted bytes.
    let out = run_sweep(&grid, &mut torn, &SweepOptions::default()).expect("healing sweep");
    assert!(out.stats.executed >= 1, "{:?}", out.stats);
    let healed = std::fs::read(&torn_path).expect("healed bytes");
    assert_eq!(healed, cold_bytes, "healed store must match cold store");
    std::fs::remove_file(&cold_path).ok();
    std::fs::remove_file(&torn_path).ok();
}
