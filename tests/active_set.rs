//! Property tests for the active-set scheduler invariant (the structural
//! core of the SoA/active-set refactor): a fabric stepped to quiescence
//! reports an **empty** active set, and re-activating one PE via a NoC push
//! wakes exactly that link's consumer — no more, no less.
//!
//! The deactivation condition inside `Fabric::step` must be *exact* (a PE
//! leaves the set only when its pipeline, pending injection, and input
//! links are all empty) because the quiescence predicate — and therefore
//! every golden cycle count — trusts `active.is_empty()`. These properties
//! pin that exactness across random geometries, sparsities, and skews.

use canon::arch::isa::Vector;
use canon::arch::kernels::spmm::{build_row_streams, preload_b_tile, SpmmFsm};
use canon::arch::noc::TaggedVector;
use canon::arch::{CanonConfig, Fabric};
use canon::sparse::{gen, Dense};
use proptest::prelude::*;

/// Builds an SpMM fabric over a random problem sized for the geometry.
fn spmm_fabric(rows: usize, cols: usize, m: usize, sparsity: f64, seed: u64) -> Fabric {
    let cfg = CanonConfig {
        rows,
        cols,
        dmem_words: 64,
        spad_entries: 16,
        ..CanonConfig::default()
    };
    let k = rows * 4;
    let mut rng = gen::seeded_rng(seed);
    let a = gen::skewed_sparse(m, k, sparsity, 2.0, &mut rng);
    let b = Dense::random(k, cols * 4, &mut rng);
    let streams = build_row_streams(&a, rows).expect("K is a multiple of rows");
    let mut fabric = Fabric::new(&cfg, false);
    preload_b_tile(&mut fabric, &b, k / rows, 0).expect("tile fits");
    for (r, stream) in streams.into_iter().enumerate() {
        fabric.set_meta_stream(r, stream);
        fabric.set_program(r, SpmmFsm::new(16, m));
    }
    fabric
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn quiescent_fabric_reports_empty_active_set(
        seed in 0u64..10_000,
        rows in 2usize..9,
        cols in 2usize..9,
        m in 1usize..24,
        sparsity in 0.0f64..0.95,
    ) {
        let mut fabric = spmm_fabric(rows, cols, m, sparsity, seed);
        let report = fabric.run().expect("spmm drains");
        prop_assert!(fabric.quiescent());
        prop_assert_eq!(fabric.active_pe_count(), 0);
        prop_assert!(fabric.active_pes().is_empty());
        // The scheduler never visited more PE-cycles than the whole-fabric
        // sweep would have, and did real work on every visited cycle bound.
        prop_assert!(report.stats.active_pe_cycles <= report.cycles * (rows * cols) as u64);
    }

    #[test]
    fn noc_push_wakes_exactly_the_consumer(
        rows in 2usize..7,
        cols in 2usize..7,
        col in 0usize..6,
        lanes in 1i32..100,
    ) {
        let col = col % cols;
        let cfg = CanonConfig {
            rows,
            cols,
            dmem_words: 8,
            spad_entries: 4,
            ..CanonConfig::default()
        };
        // A feeder-edged fabric with no programs: quiescent from the start.
        let mut fabric = Fabric::new(&cfg, true);
        prop_assert!(fabric.quiescent());
        prop_assert_eq!(fabric.active_pe_count(), 0);
        // One token queued on column `col`'s north edge: the next step's
        // edge-feed phase pushes it onto the link consumed by PE (0, col).
        fabric.set_feeder(col, vec![TaggedVector { value: Vector::splat(lanes), tag: 1 }]);
        fabric.step().expect("feed cycle");
        // Exactly the link's consumer woke up — and stays awake (the token
        // is never consumed: no orchestrator issues a pop), so repeated
        // steps neither drop it nor wake dependents transitively.
        prop_assert_eq!(fabric.active_pes(), vec![(0usize, col)]);
        fabric.step().expect("idle cycle");
        prop_assert_eq!(fabric.active_pes(), vec![(0usize, col)]);
        prop_assert!(!fabric.quiescent());
    }
}
