//! Cross-architecture integration tests: the qualitative claims of §6.2
//! (Figs 12/13) must hold on the simulators.

use canon::arch::kernels::gemm::run_gemm;
use canon::arch::kernels::nm::run_spmm_nm;
use canon::arch::kernels::sddmm::{run_sddmm, SddmmMapping};
use canon::arch::kernels::spmm::{run_spmm, SpmmMapping};
use canon::arch::CanonConfig;
use canon::baselines::{Accelerator, Cgra, SparseSystolic24, SystolicArray, ZedAccelerator};
use canon::sparse::{gen, Dense};

#[test]
fn systolic_matches_canon_on_dense_gemm_within_margin() {
    // "Canon emulates the systolic dataflow ... this performance gap is
    // minimal" — within ~25%.
    let mut rng = gen::seeded_rng(1);
    let a = Dense::random(128, 256, &mut rng);
    let b = Dense::random(256, 128, &mut rng);
    let canon = run_gemm(&CanonConfig::default(), &a, &b).unwrap();
    let sys = SystolicArray::default().gemm(128, 256, 128).unwrap();
    let ratio = canon.report.cycles as f64 / sys.cycles as f64;
    assert!(
        (0.9..=1.3).contains(&ratio),
        "canon/systolic GEMM cycle ratio {ratio}"
    );
}

#[test]
fn systolic_throughput_collapses_on_high_sparsity() {
    // "their throughput can drop to less than 0.3× that of Canon".
    let mut rng = gen::seeded_rng(2);
    let a = gen::random_sparse(256, 256, 0.85, &mut rng);
    let b = Dense::random(256, 64, &mut rng);
    let canon = run_spmm(&CanonConfig::default(), &SpmmMapping::default(), &a, &b).unwrap();
    let sys = SystolicArray::default().spmm(&a, 64).unwrap();
    let speedup = sys.cycles as f64 / canon.report.cycles as f64;
    assert!(
        speedup > 3.0,
        "Canon should be >3x faster than systolic at 85% sparsity, got {speedup}"
    );
}

#[test]
fn canon_matches_24_systolic_on_its_own_specialty() {
    // "Canon leverages the 2:4 structure, despite being designed agnostic to
    // it, achieving comparable performance to the modified systolic array."
    let mut rng = gen::seeded_rng(3);
    let a = gen::nm_sparse(128, 256, 2, 4, &mut rng);
    let b = Dense::random(256, 64, &mut rng);
    let canon = run_spmm_nm(&CanonConfig::default(), &a, &b, 2, 4).unwrap();
    let s24 = SparseSystolic24::default().spmm_nm(&a, 64, 2, 4).unwrap();
    let ratio = canon.report.cycles as f64 / s24.cycles as f64;
    assert!(
        (0.6..=1.5).contains(&ratio),
        "canon/2:4-systolic cycle ratio {ratio}"
    );
}

#[test]
fn canon_beats_24_systolic_on_28() {
    // The 2:4 datapath cannot exploit 2:8; Canon can.
    let mut rng = gen::seeded_rng(4);
    let a = gen::nm_sparse(128, 256, 2, 8, &mut rng);
    let b = Dense::random(256, 64, &mut rng);
    let canon = run_spmm_nm(&CanonConfig::default(), &a, &b, 2, 8).unwrap();
    let s24 = SparseSystolic24::default().spmm_nm(&a, 64, 2, 8).unwrap();
    assert!(
        canon.report.cycles < s24.cycles,
        "canon {} should beat 2:4 systolic {} on 2:8",
        canon.report.cycles,
        s24.cycles
    );
}

#[test]
fn zed_and_canon_comparable_on_unstructured_spmm() {
    // "comparable performance and efficiency on unstructured sparse kernels"
    // (within ~±30% across the bands in our reproduction).
    let cfg = CanonConfig::default();
    for (seed, sparsity) in [(5u64, 0.15), (6, 0.45), (7, 0.8)] {
        let mut rng = gen::seeded_rng(seed);
        let a = gen::random_sparse(256, 256, sparsity, &mut rng);
        let b = Dense::random(256, 64, &mut rng);
        let canon = run_spmm(&cfg, &SpmmMapping::default(), &a, &b).unwrap();
        let zed = ZedAccelerator::default().spmm(&a, 64).unwrap();
        let ratio = canon.report.cycles as f64 / zed.cycles.max(1) as f64;
        assert!(
            (0.5..=1.6).contains(&ratio),
            "canon/zed ratio {ratio} at sparsity {sparsity}"
        );
    }
}

#[test]
fn cgra_pays_for_generality_on_tensor_ops() {
    // CGRA emulates the systolic dataflow with configuration + fetch
    // overheads: never faster than the systolic array on GEMM.
    let sys = SystolicArray::default().gemm(128, 128, 128).unwrap();
    let cgra = Cgra::default().gemm(128, 128, 128).unwrap();
    assert!(cgra.cycles > sys.cycles);
    assert!(cgra.activity.instr_fetches > 0);
}

#[test]
fn canon_wins_window_attention_against_all_baselines() {
    // Fig 12: "Canon outperforms all baselines on window attention."
    let cfg = CanonConfig::default();
    let (seq, window, head_dim) = (128, 16, 64);
    let mut rng = gen::seeded_rng(8);
    let q = Dense::random(seq, head_dim, &mut rng);
    let k = Dense::random(seq, head_dim, &mut rng);
    let mask = gen::window_mask(seq, window);
    let mapping = SddmmMapping {
        partition: canon::arch::kernels::sddmm::ColPartition::Cyclic,
        ..SddmmMapping::default()
    };
    let canon = run_sddmm(&cfg, &mapping, &mask, &q, &k).unwrap();
    for run in [
        SystolicArray::default()
            .window_attention(seq, window, head_dim)
            .unwrap(),
        SparseSystolic24::default()
            .window_attention(seq, window, head_dim)
            .unwrap(),
        Cgra::default()
            .window_attention(seq, window, head_dim)
            .unwrap(),
    ] {
        assert!(
            canon.report.cycles < run.cycles,
            "canon {} should beat baseline {}",
            canon.report.cycles,
            run.cycles
        );
    }
}

#[test]
fn equal_peak_compute_across_architectures() {
    // §5 fairness requirement: every architecture has 256 MACs at the
    // Table 1 geometry, and iso-MAC provisioning preserves the parity at
    // every other geometry.
    let cfg = CanonConfig::default();
    assert_eq!(cfg.mac_units(), 256);
    let s = SystolicArray::default();
    assert_eq!(s.peak_macs_per_cycle(), 256);
    let z = ZedAccelerator::default();
    assert_eq!(z.compute_units * z.lanes, 256);
    assert_eq!(Cgra::default().pes, 256);
    for (r, c) in [(4, 4), (8, 16), (16, 16)] {
        let want = cfg.with_geometry(r, c).mac_units() as u64;
        assert_eq!(SystolicArray::iso_mac(r, c).peak_macs_per_cycle(), want);
        assert_eq!(SparseSystolic24::iso_mac(r, c).peak_macs_per_cycle(), want);
        assert_eq!(ZedAccelerator::iso_mac(r, c).peak_macs_per_cycle(), want);
        assert_eq!(Cgra::iso_mac(r, c).peak_macs_per_cycle(), want);
    }
}
