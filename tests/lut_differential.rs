//! Differential tests: the LUT-bitstream orchestrator (Fig 5 datapath,
//! assembled from the symbolic SpMM microcode) must be cycle-identical to
//! the native Rust FSM on the full fabric.

use canon::arch::kernels::spmm::{run_spmm, OrchKind, SpmmMapping};
use canon::arch::CanonConfig;
use canon::sparse::{gen, reference, Dense};

fn mapping(kind: OrchKind, depth: usize) -> SpmmMapping {
    SpmmMapping {
        spad_depth: depth,
        use_scratchpad: true,
        orchestrator: kind,
    }
}

fn compare(seed: u64, m: usize, k: usize, n: usize, sparsity: f64, skew: f64, depth: usize) {
    let mut rng = gen::seeded_rng(seed);
    let a = gen::skewed_sparse(m, k, sparsity, skew, &mut rng);
    let b = Dense::random(k, n, &mut rng);
    let cfg = CanonConfig::default();
    let native = run_spmm(&cfg, &mapping(OrchKind::Native, depth), &a, &b).unwrap();
    let lut = run_spmm(&cfg, &mapping(OrchKind::Lut, depth), &a, &b).unwrap();
    let reference = reference::spmm(&a, &b);
    assert_eq!(native.result, reference, "native result wrong");
    assert_eq!(lut.result, reference, "LUT result wrong");
    assert_eq!(
        native.report.cycles, lut.report.cycles,
        "LUT path must be cycle-identical (seed {seed})"
    );
    assert_eq!(
        native.report.stats.mac_instrs, lut.report.stats.mac_instrs,
        "instruction streams diverged"
    );
    assert_eq!(
        native.report.stats.orch_messages, lut.report.stats.orch_messages,
        "message traffic diverged"
    );
    assert_eq!(
        native.report.stats.spad_reads, lut.report.stats.spad_reads,
        "scratchpad activity diverged"
    );
}

#[test]
fn lut_matches_native_moderate_sparsity() {
    compare(1, 32, 64, 32, 0.5, 0.0, 16);
}

#[test]
fn lut_matches_native_high_sparsity_skewed() {
    compare(2, 48, 64, 32, 0.85, 3.0, 16);
}

#[test]
fn lut_matches_native_shallow_window_bypass_heavy() {
    // Depth 1 forces frequent bypasses — the trickiest microcode paths.
    compare(3, 40, 32, 32, 0.7, 4.0, 1);
}

#[test]
fn lut_matches_native_dense_input() {
    compare(4, 24, 32, 32, 0.0, 0.0, 8);
}

#[test]
fn lut_matches_native_nearly_empty() {
    compare(5, 16, 32, 32, 0.98, 0.0, 16);
}

#[test]
fn lut_matches_native_across_seeds() {
    for seed in 10..18 {
        compare(seed, 24, 32, 32, 0.6, 2.0, 4);
    }
}

fn compare_regacc(seed: u64, m: usize, k: usize, n: usize, sparsity: f64) {
    let mut rng = gen::seeded_rng(seed);
    let a = gen::random_sparse(m, k, sparsity, &mut rng);
    let b = Dense::random(k, n, &mut rng);
    let cfg = CanonConfig::default();
    let mk = |kind| SpmmMapping {
        spad_depth: 1,
        use_scratchpad: false,
        orchestrator: kind,
    };
    let native = run_spmm(&cfg, &mk(OrchKind::Native), &a, &b).unwrap();
    let lut = run_spmm(&cfg, &mk(OrchKind::Lut), &a, &b).unwrap();
    assert_eq!(native.result, reference::spmm(&a, &b));
    assert_eq!(lut.result, native.result);
    assert_eq!(
        native.report.cycles, lut.report.cycles,
        "register-mode LUT path must be cycle-identical (seed {seed})"
    );
    assert_eq!(native.report.stats.noc_hops, lut.report.stats.noc_hops);
}

#[test]
fn regacc_lut_matches_native_structured() {
    // The GEMM / N:M register-accumulation microcode through the bitstream.
    compare_regacc(30, 24, 32, 32, 0.0); // dense
    compare_regacc(31, 32, 64, 32, 0.5);
    compare_regacc(32, 40, 32, 40, 0.8);
}
