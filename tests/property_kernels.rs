//! Property-based tests: for arbitrary shapes, sparsities, and skews, every
//! Canon kernel mapping computes exactly the reference result, and core
//! invariants (utilization bounds, conservation of partial sums) hold.

use canon::arch::kernels::sddmm::{run_sddmm, SddmmMapping};
use canon::arch::kernels::spmm::{run_spmm, SpmmMapping};
use canon::arch::CanonConfig;
use canon::sparse::{gen, reference, Dense};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    #[test]
    fn spmm_always_matches_reference(
        seed in 0u64..10_000,
        m in 1usize..40,
        k_blocks in 1usize..6,     // K = 8 * k_blocks
        n in 1usize..48,
        sparsity in 0.0f64..0.98,
        skew in 0.0f64..4.0,
        depth in 1usize..17,
    ) {
        let k = 8 * k_blocks;
        let mut rng = gen::seeded_rng(seed);
        let a = gen::skewed_sparse(m, k, sparsity, skew, &mut rng);
        let b = Dense::random(k, n, &mut rng);
        let mapping = SpmmMapping { spad_depth: depth, ..SpmmMapping::default() };
        let out = run_spmm(&CanonConfig::default(), &mapping, &a, &b).unwrap();
        prop_assert_eq!(out.result, reference::spmm(&a, &b));
        // Utilization is a fraction of peak.
        let util = out.report.compute_utilization();
        prop_assert!((0.0..=1.0).contains(&util));
        // Every non-zero became exactly cols MAC instructions per tile.
        let tiles = n.div_ceil(32) as u64;
        prop_assert_eq!(out.report.stats.mac_instrs, a.nnz() as u64 * 8 * tiles);
    }

    #[test]
    fn spmm_register_mode_matches_reference(
        seed in 0u64..10_000,
        m in 1usize..32,
        k_blocks in 1usize..5,
        n in 1usize..40,
        sparsity in 0.0f64..0.9,
    ) {
        let k = 8 * k_blocks;
        let mut rng = gen::seeded_rng(seed);
        let a = gen::random_sparse(m, k, sparsity, &mut rng);
        let b = Dense::random(k, n, &mut rng);
        let mapping = SpmmMapping { spad_depth: 1, use_scratchpad: false, ..SpmmMapping::default() };
        let out = run_spmm(&CanonConfig::default(), &mapping, &a, &b).unwrap();
        prop_assert_eq!(out.result, reference::spmm(&a, &b));
        prop_assert_eq!(out.report.stats.spad_reads, 0);
    }

    #[test]
    fn sddmm_always_matches_reference(
        seed in 0u64..10_000,
        m in 1usize..24,
        k_blocks in 1usize..4,     // K = 32 * k_blocks
        n_blocks in 1usize..4,     // N = 8 * n_blocks
        sparsity in 0.0f64..0.98,
    ) {
        let k = 32 * k_blocks;
        let n = 8 * n_blocks;
        let mut rng = gen::seeded_rng(seed);
        let a = Dense::random(m, k, &mut rng);
        let b = Dense::random(n, k, &mut rng);
        let mask = gen::random_mask(m, n, sparsity, &mut rng);
        let out = run_sddmm(&CanonConfig::default(), &SddmmMapping::default(), &mask, &a, &b)
            .unwrap();
        prop_assert_eq!(out.result, reference::sddmm(&mask, &a, &b));
        // Useful MACs = W per masked position, executed by all 8 PE columns.
        let w = (k / 32) as u64;
        prop_assert_eq!(out.report.stats.mac_instrs, mask.nnz() as u64 * w * 8);
    }

    #[test]
    fn deeper_scratchpad_never_loses_to_depth_one(
        seed in 0u64..5_000,
        sparsity in 0.5f64..0.9,
        skew in 1.0f64..4.0,
    ) {
        let mut rng = gen::seeded_rng(seed);
        let a = gen::skewed_sparse(64, 64, sparsity, skew, &mut rng);
        let b = Dense::random(64, 32, &mut rng);
        let cfg = CanonConfig::default();
        let d1 = run_spmm(&cfg, &SpmmMapping { spad_depth: 1, ..Default::default() }, &a, &b)
            .unwrap();
        let d16 = run_spmm(&cfg, &SpmmMapping { spad_depth: 16, ..Default::default() }, &a, &b)
            .unwrap();
        prop_assert_eq!(&d1.result, &d16.result);
        // Allow small noise, but depth 16 must not be significantly slower.
        prop_assert!(
            (d16.report.cycles as f64) <= (d1.report.cycles as f64) * 1.05,
            "depth16 {} vs depth1 {}", d16.report.cycles, d1.report.cycles
        );
    }
}
