//! Replay engine differential: steady-state macro-cycle replay must be
//! **perf-only**.
//!
//! The fabric keeps cycle-stepping available ([`Fabric::set_replay`] /
//! [`CanonConfig::replay`]): these properties run the same random program
//! with the replay engine enabled and force-disabled and diff everything
//! the engine could influence — the full [`RunReport`] (cycle counts, every
//! architectural counter, the stall breakdown, and the
//! `batched_pe_cycles` diagnostic, which replay reproduces exactly by
//! design) and the south/east collector sequences with their exit cycles.
//! The only legitimate differences are the `Stats::replayed_cycles` /
//! `Stats::replay_stretches` diagnostics themselves (they *measure* whether
//! the engine ran), so they are normalized to zero on both sides.
//!
//! Directed tests pin the rest of the contract: the detector actually
//! fires and defers a majority of a deep dense kernel (a replay engine that
//! never engages would pass every differential), mid-stretch divergence
//! (an accumulator re-target) falls back to cycle-stepping without a trace,
//! harness sentinels (`PanicAt`, `max_cycles`) fire at the exact cycle even
//! inside a captured stretch, and an attached trace sink disengages the
//! engine entirely.

use canon::arch::fault::FaultAction;
use canon::arch::isa::{Addr, Direction, Instruction, Opcode, Vector};
use canon::arch::kernels::gemm::RegAccFsm;
use canon::arch::kernels::spmm::{build_row_streams, preload_b_tile, SpmmFsm};
use canon::arch::orchestrator::{OrchAction, OrchIo, OrchProgram, RowProgram};
use canon::arch::stats::RunReport;
use canon::arch::trace::VecSink;
use canon::arch::{CanonConfig, Fabric, SimError};
use canon::sparse::{gen, Dense};
use proptest::prelude::*;

/// The `tests/batch_column.rs` fabric builder: an SpMM-shaped problem sized
/// for the geometry, rows `0..regacc_rows` on the register-accumulation
/// FSM, the rest on the window FSM. Deep dense bands are what produce the
/// uniform stretches replay captures.
fn spmm_fabric(
    rows: usize,
    cols: usize,
    m: usize,
    band_words: usize,
    sparsity: f64,
    depth: usize,
    seed: u64,
    regacc_rows: usize,
    replay: bool,
) -> Fabric {
    let cfg = CanonConfig {
        rows,
        cols,
        dmem_words: band_words.max(64),
        spad_entries: 16,
        replay,
        ..CanonConfig::default()
    };
    let k = rows * band_words;
    let mut rng = gen::seeded_rng(seed);
    let a = gen::skewed_sparse(m, k, sparsity, 2.0, &mut rng);
    let b = Dense::random(k, cols * 4, &mut rng);
    let streams = build_row_streams(&a, rows).expect("K is a multiple of rows");
    let mut fabric = Fabric::new(&cfg, false);
    preload_b_tile(&mut fabric, &b, k / rows, 0).expect("tile fits");
    for (r, stream) in streams.into_iter().enumerate() {
        fabric.set_meta_stream(r, stream);
        if r < regacc_rows {
            fabric.set_program(r, RegAccFsm::new(m));
        } else {
            fabric.set_program(r, SpmmFsm::new(depth, m));
        }
    }
    fabric
}

/// The report with the diagnostics that *name* the executing engine zeroed
/// out — everything else, `batched_pe_cycles` included, must match exactly.
fn normalized(mut report: RunReport) -> RunReport {
    report.stats.replayed_cycles = 0;
    report.stats.replay_stretches = 0;
    report
}

fn assert_replay_invisible(replayed: (&Fabric, RunReport), stepped: (&Fabric, RunReport)) {
    let (rf, rr) = replayed;
    let (sf, sr) = stepped;
    assert_eq!(
        sr.stats.replayed_cycles, 0,
        "disabled engine still replayed"
    );
    assert_eq!(
        normalized(rr),
        normalized(sr),
        "replay on/off reports diverged"
    );
    assert_eq!(
        rf.south_collected(),
        sf.south_collected(),
        "south collector sequence diverged"
    );
    assert_eq!(
        rf.east_collected(),
        sf.east_collected(),
        "east collector sequence diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random kernels, bands, sparsities, and FSM mixes from 8×8 through
    /// 64×64: replay enabled vs force-disabled must produce identical
    /// reports (including `batched_pe_cycles` — the engine accounts the
    /// batch sweep it defers) and collector sequences. Sparse bands break
    /// stretches constantly, dense bands produce long ones, and mixed grids
    /// never go fully uniform — all three regimes must be invisible.
    #[test]
    fn replay_is_architecturally_invisible(
        seed in 0u64..10_000,
        rows_sel in 0usize..4,
        cols_sel in 0usize..4,
        m in 1usize..20,
        band_sel in 0usize..3,
        sparsity in 0.0f64..0.95,
        depth in 1usize..5,
        regacc_sel in 0u8..4,
    ) {
        let dims = [8usize, 16, 32, 64];
        let (rows, cols) = (dims[rows_sel], dims[cols_sel]);
        let regacc_rows = [0, rows, rows / 2, rows / 4][regacc_sel as usize];
        let mut band = [4usize, 16, 64][band_sel];
        if rows * cols * m * band > 2_000_000 {
            band = 4;
        }
        let mut replayed =
            spmm_fabric(rows, cols, m, band, sparsity, depth, seed, regacc_rows, true);
        let mut stepped =
            spmm_fabric(rows, cols, m, band, sparsity, depth, seed, regacc_rows, false);
        let rr = replayed.run().expect("replayed run drains");
        let sr = stepped.run().expect("stepped run drains");
        assert_replay_invisible((&replayed, rr), (&stepped, sr));
    }
}

/// A deep dense register-accumulation kernel must actually replay — and
/// replay most of its cycles: long uniform MAC bursts dominate the run, so
/// a majority of cycles must be fast-forwarded, not merely a stray stretch.
#[test]
fn dense_regacc_replays_a_majority_of_cycles() {
    let mut fabric = spmm_fabric(8, 8, 16, 256, 0.0, 4, 7, 8, true);
    let report = fabric.run().expect("dense run drains");
    assert!(
        report.stats.replay_stretches > 0,
        "replay never engaged on a dense uniform workload"
    );
    assert!(
        report.stats.replayed_cycles * 2 >= report.cycles,
        "deep dense bands replayed under half the run: {} of {}",
        report.stats.replayed_cycles,
        report.cycles,
    );
}

/// A scripted orchestrator that plays back a fixed instruction sequence
/// (one instruction per cycle, then done).
struct Script {
    instrs: std::collections::VecDeque<Instruction>,
}

impl OrchProgram for Script {
    fn step(&mut self, _io: &OrchIo) -> OrchAction {
        match self.instrs.pop_front() {
            Some(i) => OrchAction::issue(i, 0),
            None => OrchAction::nop(0),
        }
    }
    fn done(&self) -> bool {
        self.instrs.is_empty()
    }
}

/// Every row issues `n0` MACs into spad slot 0, then `n1` into slot 1 —
/// same shape throughout, so the uniformity detector sees one long clean
/// run, but the accumulator re-target breaks the captured template
/// mid-stretch. The engine must flush at exactly that cycle, cycle-step
/// through the break, and re-enter on the second block.
fn retarget_fabric(n0: usize, n1: usize, replay: bool) -> Fabric {
    let cfg = CanonConfig {
        rows: 4,
        cols: 8,
        dmem_words: 64,
        spad_entries: 4,
        replay,
        ..CanonConfig::default()
    };
    let mut fabric = Fabric::new(&cfg, false);
    for r in 0..4 {
        for c in 0..8 {
            let mut pe = fabric.pe_mut(r, c);
            for w in 0..64 {
                pe.dmem
                    .preload(w, &[Vector::splat((r + c + w) as i32 % 7 + 1)]);
            }
        }
    }
    for r in 0..4 {
        let mut instrs: Vec<Instruction> = Vec::new();
        for i in 0..n0 {
            instrs.push(
                Instruction::new(
                    Opcode::MacS,
                    Addr::Imm,
                    Addr::DataMem((i % 64) as u16),
                    Addr::Spad(0),
                )
                .with_imm(Vector::splat((i % 5) as i32 + 1)),
            );
        }
        for i in 0..n1 {
            instrs.push(
                Instruction::new(
                    Opcode::MacS,
                    Addr::Imm,
                    Addr::DataMem((i % 64) as u16),
                    Addr::Spad(1),
                )
                .with_imm(Vector::splat((i % 3) as i32 + 1)),
            );
        }
        if r == 3 {
            // Bottom row flushes both accumulators into the south sink so
            // the differential observes the final chains architecturally.
            for slot in 0..2u16 {
                instrs.push(
                    Instruction::new(
                        Opcode::MovFlush,
                        Addr::Spad(slot),
                        Addr::Null,
                        Addr::Port(Direction::South),
                    )
                    .with_tag(slot as u32),
                );
            }
        }
        fabric.set_program(
            r,
            RowProgram::custom(Script {
                instrs: instrs.into(),
            }),
        );
    }
    fabric
}

/// Mid-stretch divergence: an accumulator re-target (same MAC shape, new
/// spad slot) must fall back to cycle-stepping without a trace — identical
/// results and counters, with the run splitting into two stretches.
#[test]
fn retarget_mid_stretch_falls_back_and_reenters() {
    let mut replayed = retarget_fabric(80, 80, true);
    let mut stepped = retarget_fabric(80, 80, false);
    let rr = replayed.run().expect("replayed run drains");
    let sr = stepped.run().expect("stepped run drains");
    assert!(
        rr.stats.replay_stretches >= 2,
        "expected the re-target to split the run into two stretches, got {}",
        rr.stats.replay_stretches
    );
    assert_replay_invisible((&replayed, rr), (&stepped, sr));
    // The flushed accumulator chains exit architecturally — both engines
    // must agree on the values and the exit cycles.
    assert!(!replayed.south_collected().is_empty());
}

/// A stretch shorter than the entry threshold (3·cols cycles) must never
/// capture — and still match the stepped engine exactly.
#[test]
fn short_bursts_never_enter_but_stay_invisible() {
    let mut replayed = retarget_fabric(10, 10, true);
    let mut stepped = retarget_fabric(10, 10, false);
    let rr = replayed.run().expect("replayed run drains");
    let sr = stepped.run().expect("stepped run drains");
    assert_eq!(
        rr.stats.replay_stretches, 0,
        "short bursts must not capture"
    );
    assert_replay_invisible((&replayed, rr), (&stepped, sr));
}

/// `FaultAction::PanicAt` must fire at the exact injected cycle even when
/// that cycle falls inside a captured stretch — the run loop checks the
/// sentinel every cycle, deferred or not.
#[test]
fn panic_at_fires_mid_stretch_at_exact_cycle() {
    // Cycle 400 sits deep inside the first captured stretch of the dense
    // 8×8 deep-band kernel (entry needs only 3·cols = 24 clean cycles).
    let at = 400u64;
    for replay in [true, false] {
        let cfg = CanonConfig {
            rows: 8,
            cols: 8,
            dmem_words: 256,
            spad_entries: 16,
            replay,
            fault: Some(FaultAction::PanicAt { cycle: at }),
            ..CanonConfig::default()
        };
        let mut faulted = build_with(cfg);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| faulted.run()))
            .expect_err("injected panic must fire");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic".into());
        assert!(
            msg.contains("injected fault") && msg.contains("cycle 400"),
            "unexpected panic payload with replay={replay}: {msg}"
        );
    }
}

/// Rebuilds the dense 8×8 deep-band fabric under an arbitrary config
/// (fault/budget sentinel tests need config fields `spmm_fabric` does not
/// expose).
fn build_with(cfg: CanonConfig) -> Fabric {
    let k = cfg.rows * cfg.dmem_words;
    let mut rng = gen::seeded_rng(7);
    let a = gen::skewed_sparse(16, k, 0.0, 2.0, &mut rng);
    let b = Dense::random(k, cfg.cols * 4, &mut rng);
    let streams = build_row_streams(&a, cfg.rows).expect("K is a multiple of rows");
    let mut fabric = Fabric::new(&cfg, false);
    preload_b_tile(&mut fabric, &b, k / cfg.rows, 0).expect("tile fits");
    for (r, stream) in streams.into_iter().enumerate() {
        fabric.set_meta_stream(r, stream);
        fabric.set_program(r, RegAccFsm::new(16));
    }
    fabric
}

/// The `max_cycles` ceiling must abort at the exact cycle with identical
/// partial stats, replayed or stepped — a deferred stretch cannot overshoot
/// the budget.
#[test]
fn cycle_ceiling_aborts_mid_stretch_at_exact_cycle() {
    let mut reports = Vec::new();
    for replay in [true, false] {
        let cfg = CanonConfig {
            rows: 8,
            cols: 8,
            dmem_words: 256,
            spad_entries: 16,
            replay,
            max_cycles: Some(300),
            ..CanonConfig::default()
        };
        let mut fabric = build_with(cfg);
        match fabric.run() {
            Err(SimError::Timeout { cycle, budget }) => {
                assert_eq!(cycle, 300, "ceiling drifted with replay={replay}");
                assert!(budget.contains("cycle ceiling"));
            }
            other => panic!("expected a timeout, got {other:?}"),
        }
        reports.push(normalized(fabric.report()));
    }
    assert_eq!(
        reports[0], reports[1],
        "partial stats diverged at the abort"
    );
}

/// An attached trace sink disengages the engine: traces need the per-cycle
/// event order, so a traced run must never defer — and the stream must
/// equal the replay-off traced stream byte for byte (that equality is what
/// lets traced debugging represent replayed production runs).
#[test]
fn trace_sink_disengages_replay() {
    let mut traced_on = spmm_fabric(8, 8, 16, 64, 0.0, 4, 7, 8, true);
    let mut traced_off = spmm_fabric(8, 8, 16, 64, 0.0, 4, 7, 8, false);
    let (sink_a, sink_b) = (VecSink::default(), VecSink::default());
    traced_on.set_trace_sink(Box::new(sink_a.clone()));
    traced_off.set_trace_sink(Box::new(sink_b.clone()));
    let ra = traced_on.run().expect("traced run drains");
    let rb = traced_off.run().expect("traced run drains");
    traced_on.take_trace_sink();
    traced_off.take_trace_sink();
    assert_eq!(
        ra.stats.replayed_cycles, 0,
        "replay engaged under an attached trace sink"
    );
    assert_eq!(normalized(ra), normalized(rb));
    assert_eq!(sink_a.take_events(), sink_b.take_events());
}
