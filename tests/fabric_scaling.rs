//! Integration tests for scaled fabrics (the Fig 15 configurations) and
//! failure-injection paths: the simulator must stay exact on larger arrays
//! and fail loudly — not silently — on protocol violations.

use canon::arch::kernels::sddmm::{run_sddmm, ColPartition, SddmmMapping};
use canon::arch::kernels::spmm::{run_spmm, SpmmMapping};
use canon::arch::{CanonConfig, SimError};
use canon::sparse::{gen, reference, Dense};

#[test]
fn spmm_exact_on_2x_fabric() {
    let cfg = CanonConfig::default().scaled(2); // 16×16 PEs
    let mut rng = gen::seeded_rng(1);
    let a = gen::skewed_sparse(48, 128, 0.7, 2.0, &mut rng);
    let b = Dense::random(128, 80, &mut rng);
    let out = run_spmm(&cfg, &SpmmMapping::default(), &a, &b).unwrap();
    assert_eq!(out.result, reference::spmm(&a, &b));
    assert_eq!(out.report.pes, 256);
}

#[test]
fn spmm_exact_on_4x_fabric() {
    let cfg = CanonConfig::default().scaled(4); // 32×32 PEs
    let mut rng = gen::seeded_rng(2);
    let a = gen::random_sparse(32, 256, 0.6, &mut rng);
    let b = Dense::random(256, 128, &mut rng);
    let out = run_spmm(&cfg, &SpmmMapping::default(), &a, &b).unwrap();
    assert_eq!(out.result, reference::spmm(&a, &b));
}

#[test]
fn sddmm_exact_on_2x_fabric_both_partitions() {
    let cfg = CanonConfig::default().scaled(2); // 16 rows, 16 cols
    let mut rng = gen::seeded_rng(3);
    let k = 64; // W = 1 on the 16-column fabric
    let q = Dense::random(32, k, &mut rng);
    let kv = Dense::random(32, k, &mut rng);
    let mask = gen::random_mask(32, 32, 0.5, &mut rng);
    for partition in [ColPartition::Block, ColPartition::Cyclic] {
        let mapping = SddmmMapping {
            partition,
            ..SddmmMapping::default()
        };
        let out = run_sddmm(&cfg, &mapping, &mask, &q, &kv).unwrap();
        assert_eq!(
            out.result,
            reference::sddmm(&mask, &q, &kv),
            "{partition:?}"
        );
    }
}

#[test]
fn cyclic_partition_balances_banded_masks() {
    // The motivation for ColPartition::Cyclic: a diagonal band concentrates
    // on one row block at a time under Block partitioning.
    let cfg = CanonConfig::default();
    let mut rng = gen::seeded_rng(4);
    let seq = 64;
    let q = Dense::random(seq, 64, &mut rng);
    let kv = Dense::random(seq, 64, &mut rng);
    let mask = gen::window_mask(seq, 8);
    let block = run_sddmm(
        &cfg,
        &SddmmMapping {
            partition: ColPartition::Block,
            ..SddmmMapping::default()
        },
        &mask,
        &q,
        &kv,
    )
    .unwrap();
    let cyclic = run_sddmm(
        &cfg,
        &SddmmMapping {
            partition: ColPartition::Cyclic,
            ..SddmmMapping::default()
        },
        &mask,
        &q,
        &kv,
    )
    .unwrap();
    assert_eq!(block.result, cyclic.result);
    assert!(
        cyclic.report.cycles * 2 < block.report.cycles * 3,
        "cyclic ({}) should clearly beat block ({}) on a band",
        cyclic.report.cycles,
        block.report.cycles
    );
}

#[test]
fn mapping_constraint_errors_are_descriptive() {
    let cfg = CanonConfig::default();
    let mut rng = gen::seeded_rng(5);
    // K not a multiple of rows.
    let a = gen::random_sparse(8, 20, 0.5, &mut rng);
    let b = Dense::random(20, 8, &mut rng);
    match run_spmm(&cfg, &SpmmMapping::default(), &a, &b) {
        Err(SimError::Mapping { reason }) => assert!(reason.contains("multiple")),
        other => panic!("expected mapping error, got {other:?}"),
    }
    // K-segment exceeding data memory.
    let tiny = CanonConfig {
        dmem_words: 2,
        ..CanonConfig::default()
    };
    let a = gen::random_sparse(8, 64, 0.5, &mut rng);
    let b = Dense::random(64, 8, &mut rng);
    match run_spmm(&tiny, &SpmmMapping::default(), &a, &b) {
        Err(SimError::Mapping { reason }) => assert!(reason.contains("data memory")),
        other => panic!("expected mapping error, got {other:?}"),
    }
}

#[test]
fn watchdog_reports_stuck_rows() {
    // A stream whose FSM can never finish: a row-end for a row id beyond
    // m_total leaves the window bookkeeping waiting forever. The watchdog
    // must fire with a useful message instead of hanging.
    use canon::arch::kernels::spmm::SpmmFsm;
    use canon::arch::orchestrator::MetaToken;
    use canon::arch::Fabric;
    let cfg = CanonConfig {
        rows: 2,
        cols: 2,
        dmem_words: 8,
        spad_entries: 4,
        watchdog_factor: 4,
        watchdog_slack: 100,
        ..CanonConfig::default()
    };
    let mut fabric = Fabric::new(&cfg, false);
    // Stream without its End token: the FSM never reaches DONE.
    fabric.set_meta_stream(0, vec![MetaToken::RowEnd { row: 0 }]);
    fabric.set_program(0, SpmmFsm::new(2, 4));
    match fabric.run() {
        Err(SimError::Deadlock { waiting_on, .. }) => {
            assert!(waiting_on.contains("row 0"), "message: {waiting_on}");
        }
        other => panic!("expected watchdog deadlock, got {other:?}"),
    }
}

#[test]
fn utilization_never_exceeds_one_across_fabrics() {
    for factor in [1usize, 2] {
        let cfg = CanonConfig::default().scaled(factor);
        let mut rng = gen::seeded_rng(6 + factor as u64);
        let k = 64 * factor;
        let a = gen::random_sparse(24, k, 0.2, &mut rng);
        let b = Dense::random(k, 4 * cfg.cols, &mut rng);
        let out = run_spmm(&cfg, &SpmmMapping::default(), &a, &b).unwrap();
        let u = out.report.compute_utilization();
        assert!((0.0..=1.0).contains(&u), "utilization {u} at {factor}x");
    }
}
