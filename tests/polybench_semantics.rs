//! Semantic validation of the PolyBench IR definitions: every kernel's IR
//! executor output is compared against an independently hand-written Rust
//! implementation over the same deterministic initial values.

use canon::loopir::nest::{execute, init_value};
use canon::loopir::polybench;

fn arr2(a: usize, n: usize) -> Vec<Vec<i64>> {
    (0..n)
        .map(|i| (0..n).map(|j| init_value(a, i * n + j)).collect())
        .collect()
}
fn arr1(a: usize, n: usize) -> Vec<i64> {
    (0..n).map(|i| init_value(a, i)).collect()
}

fn kernel(name: &str, n: usize) -> canon::loopir::Kernel {
    polybench::suite(n)
        .into_iter()
        .find(|k| k.name == name)
        .unwrap_or_else(|| panic!("kernel {name} in suite"))
}

#[test]
fn gemver_matches_handwritten() {
    let n = 7;
    let out = execute(&kernel("gemver", n));
    let mut a = arr2(0, n);
    let u1 = arr1(1, n);
    let v1 = arr1(2, n);
    let u2 = arr1(3, n);
    let v2 = arr1(4, n);
    let y = arr1(5, n);
    let z = arr1(6, n);
    let mut x = arr1(7, n);
    let mut w = arr1(8, n);
    for i in 0..n {
        for j in 0..n {
            a[i][j] += u1[i] * v1[j] + u2[i] * v2[j];
        }
    }
    for i in 0..n {
        for j in 0..n {
            x[i] += a[j][i] * y[j];
        }
    }
    for i in 0..n {
        x[i] += z[i];
    }
    for i in 0..n {
        for j in 0..n {
            w[i] += a[i][j] * x[j];
        }
    }
    for i in 0..n {
        assert_eq!(out[8].get(&[i as i64]), w[i], "w[{i}]");
    }
}

#[test]
fn gesummv_matches_handwritten() {
    let n = 6;
    let out = execute(&kernel("gesummv", n));
    let a = arr2(0, n);
    let b = arr2(1, n);
    let x = arr1(2, n);
    let mut tmp = arr1(3, n);
    let mut y = arr1(4, n);
    for i in 0..n {
        for j in 0..n {
            tmp[i] += a[i][j] * x[j];
            y[i] += b[i][j] * x[j];
        }
    }
    for i in 0..n {
        y[i] = 3 * tmp[i] + 2 * y[i];
    }
    for i in 0..n {
        assert_eq!(out[4].get(&[i as i64]), y[i], "y[{i}]");
    }
}

#[test]
fn bicg_and_mvt_match_handwritten() {
    let n = 6;
    // bicg
    let out = execute(&kernel("bicg", n));
    let a = arr2(0, n);
    let mut s = arr1(1, n);
    let mut q = arr1(2, n);
    let p = arr1(3, n);
    let r = arr1(4, n);
    for i in 0..n {
        for j in 0..n {
            s[j] += r[i] * a[i][j];
            q[i] += a[i][j] * p[j];
        }
    }
    for i in 0..n {
        assert_eq!(out[1].get(&[i as i64]), s[i], "s[{i}]");
        assert_eq!(out[2].get(&[i as i64]), q[i], "q[{i}]");
    }
    // mvt
    let out = execute(&kernel("mvt", n));
    let a = arr2(0, n);
    let mut x1 = arr1(1, n);
    let mut x2 = arr1(2, n);
    let y1 = arr1(3, n);
    let y2 = arr1(4, n);
    for i in 0..n {
        for j in 0..n {
            x1[i] += a[i][j] * y1[j];
            x2[i] += a[j][i] * y2[j];
        }
    }
    for i in 0..n {
        assert_eq!(out[1].get(&[i as i64]), x1[i], "x1[{i}]");
        assert_eq!(out[2].get(&[i as i64]), x2[i], "x2[{i}]");
    }
}

#[test]
fn two_mm_matches_handwritten() {
    let n = 5;
    let out = execute(&kernel("2mm", n));
    let a = arr2(0, n);
    let b = arr2(1, n);
    let c = arr2(2, n);
    let mut d = arr2(3, n);
    let mut tmp = arr2(4, n);
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                tmp[i][j] += a[i][k] * b[k][j];
            }
        }
    }
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                d[i][j] += tmp[i][k] * c[k][j];
            }
        }
    }
    for i in 0..n {
        for j in 0..n {
            assert_eq!(out[3].get(&[i as i64, j as i64]), d[i][j]);
        }
    }
}

#[test]
fn doitgen_matches_handwritten() {
    let n = 4;
    let out = execute(&kernel("doitgen", n));
    let mut a: Vec<Vec<Vec<i64>>> = (0..n)
        .map(|r| {
            (0..n)
                .map(|q| (0..n).map(|p| init_value(0, (r * n + q) * n + p)).collect())
                .collect()
        })
        .collect();
    let c4 = arr2(1, n);
    let mut sum: Vec<Vec<Vec<i64>>> = (0..n)
        .map(|r| {
            (0..n)
                .map(|q| (0..n).map(|p| init_value(2, (r * n + q) * n + p)).collect())
                .collect()
        })
        .collect();
    for r in 0..n {
        for q in 0..n {
            for p in 0..n {
                for s in 0..n {
                    sum[r][q][p] += a[r][q][s] * c4[s][p];
                }
            }
        }
    }
    for r in 0..n {
        for q in 0..n {
            for p in 0..n {
                a[r][q][p] = sum[r][q][p];
            }
        }
    }
    for r in 0..n {
        for q in 0..n {
            for p in 0..n {
                assert_eq!(out[0].get(&[r as i64, q as i64, p as i64]), a[r][q][p]);
            }
        }
    }
}

#[test]
fn trmm_matches_handwritten() {
    let n = 6;
    let out = execute(&kernel("trmm", n));
    let a = arr2(0, n);
    let mut b = arr2(1, n);
    for i in 0..n {
        for j in 0..n {
            for k in i + 1..n {
                b[i][j] += a[k][i] * b[k][j];
            }
        }
    }
    for i in 0..n {
        for j in 0..n {
            assert_eq!(out[1].get(&[i as i64, j as i64]), b[i][j], "B[{i}][{j}]");
        }
    }
}

#[test]
fn seidel_2d_matches_handwritten() {
    let n = 7;
    let out = execute(&kernel("seidel-2d", n));
    let mut a = arr2(0, n);
    for i in 1..n - 1 {
        for j in 1..n - 1 {
            a[i][j] = a[i - 1][j - 1]
                + a[i - 1][j]
                + a[i - 1][j + 1]
                + a[i][j - 1]
                + a[i][j]
                + a[i][j + 1]
                + a[i + 1][j - 1]
                + a[i + 1][j]
                + a[i + 1][j + 1];
        }
    }
    for i in 0..n {
        for j in 0..n {
            assert_eq!(out[0].get(&[i as i64, j as i64]), a[i][j]);
        }
    }
}

#[test]
fn fdtd_2d_matches_handwritten() {
    let n = 6;
    let out = execute(&kernel("fdtd-2d", n));
    let mut ex = arr2(0, n);
    let mut ey = arr2(1, n);
    let mut hz = arr2(2, n);
    for i in 0..n - 1 {
        for j in 0..n {
            ey[i + 1][j] -= hz[i + 1][j] - hz[i][j];
        }
    }
    for i in 0..n {
        for j in 0..n - 1 {
            ex[i][j + 1] -= hz[i][j + 1] - hz[i][j];
        }
    }
    for i in 0..n - 1 {
        for j in 0..n - 1 {
            hz[i][j] -= (ex[i][j + 1] - ex[i][j]) + (ey[i + 1][j] - ey[i][j]);
        }
    }
    for i in 0..n {
        for j in 0..n {
            assert_eq!(out[2].get(&[i as i64, j as i64]), hz[i][j], "hz[{i}][{j}]");
        }
    }
}

#[test]
fn covariance_matches_handwritten() {
    let n = 5;
    let out = execute(&kernel("covariance", n));
    let mut data = arr2(0, n);
    let mut mean = arr1(1, n);
    let mut cov = arr2(2, n);
    for j in 0..n {
        for i in 0..n {
            mean[j] += data[i][j];
        }
    }
    for i in 0..n {
        for j in 0..n {
            data[i][j] -= mean[j];
        }
    }
    for i in 0..n {
        for j in i..n {
            for k in 0..n {
                cov[i][j] += data[k][i] * data[k][j];
            }
        }
    }
    for i in 0..n {
        for j in i..n {
            assert_eq!(out[2].get(&[i as i64, j as i64]), cov[i][j]);
        }
    }
}

#[test]
fn heat_3d_matches_handwritten() {
    let n = 5;
    let out = execute(&kernel("heat-3d", n));
    let idx = |i: usize, j: usize, k: usize| (i * n + j) * n + k;
    let mut a: Vec<i64> = (0..n * n * n).map(|i| init_value(0, i)).collect();
    let mut b: Vec<i64> = (0..n * n * n).map(|i| init_value(1, i)).collect();
    let star = |src: &[i64], dst: &mut [i64]| {
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                for k in 1..n - 1 {
                    dst[idx(i, j, k)] = src[idx(i, j, k)]
                        + src[idx(i - 1, j, k)]
                        + src[idx(i + 1, j, k)]
                        + src[idx(i, j - 1, k)]
                        + src[idx(i, j + 1, k)]
                        + src[idx(i, j, k - 1)]
                        + src[idx(i, j, k + 1)];
                }
            }
        }
    };
    let a_snapshot = a.clone();
    star(&a_snapshot, &mut b);
    let b_snapshot = b.clone();
    star(&b_snapshot, &mut a);
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                assert_eq!(
                    out[0].get(&[i as i64, j as i64, k as i64]),
                    a[idx(i, j, k)],
                    "A[{i}][{j}][{k}]"
                );
            }
        }
    }
}
