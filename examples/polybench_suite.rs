//! PolyBench on Canon vs the CGRA baseline (the PolyB-* columns of Fig 12).
//!
//! Runs every kernel of the suite through the loop-IR analyses and both
//! mapping cost models, printing per-kernel cycle counts and the per-category
//! geometric-mean comparison.
//!
//! ```sh
//! cargo run --release --example polybench_suite
//! ```

use canon::baselines::Cgra;
use canon::loopir::mapping::{compare_category, map_canon, map_cgra};
use canon::loopir::{analyze_nest, polybench, Category};

fn main() {
    let n = 64;
    let kernels = polybench::suite(n);
    let cgra = Cgra::default();

    println!("PolyBench (n = {n}) — Canon (8×8×4) vs CGRA (256 PEs)\n");
    println!(
        "{:<16} {:>9} {:>12} {:>12} {:>9}",
        "kernel", "category", "canon cyc", "cgra cyc", "speedup"
    );
    for k in &kernels {
        let canon = map_canon(k, 8, 8, 4);
        let cg = map_cgra(k, &cgra);
        println!(
            "{:<16} {:>9} {:>12} {:>12} {:>8.2}x",
            k.name,
            k.category.to_string(),
            canon.cycles,
            cg.cycles,
            cg.cycles as f64 / canon.cycles.max(1) as f64
        );
    }

    println!("\nPer-category geometric-mean speedup of Canon over the CGRA:");
    for cat in [Category::Blas, Category::Kernel, Category::Stencil] {
        let cmp = compare_category(&kernels, cat, 8, 8, 4);
        println!(
            "  {:<8} {:.2}x over {} kernels",
            cat.to_string(),
            cmp.geomean_speedup(),
            cmp.kernels.len()
        );
    }

    // Show what the analyses see for one kernel.
    let gemm = kernels.iter().find(|k| k.name == "gemm").unwrap();
    let a = analyze_nest(&gemm.nests[0]);
    println!(
        "\ngemm nest analysis: dims {:?}, {} ops/point, {} points",
        a.dims, a.ops_per_point, a.points
    );
}
