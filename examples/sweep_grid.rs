//! Sweep a 280-cell scenario grid across all five architectures.
//!
//! ```sh
//! cargo run --release --example sweep_grid
//! ```
//!
//! Builds the standard ten workload families — seven tensor templates
//! (banded SpMM/SDDMM fan out over S1–S3) plus three PolyBench loop nests —
//! at two problem scales and two fabric geometries, with baselines
//! provisioned iso-MAC at each geometry, fans the grid out over all cores,
//! and prints the cross-backend speedup and EDP tables. Run it twice: the
//! second invocation satisfies every cell from the JSONL store and reports
//! cache hits instead of re-simulating.

use canon::sweep::engine::{run_sweep, SweepOptions};
use canon::sweep::report::{edp_table, speedup_table};
use canon::sweep::scenario::{standard_workloads, GridBuilder};
use canon::sweep::store::ResultStore;
use std::collections::HashSet;

fn main() -> std::io::Result<()> {
    let mut builder = GridBuilder::new()
        .scales(&[4, 8]) // quarter- and eighth-scale shapes
        // Table 1 fabric + a double-row scaled point. (16, 8) keeps
        // cols·lanes = 32, so the small smoke head dimensions stay
        // mappable on Canon; a 16x16 point would record SDDMM cells as
        // mapping errors (K = 32 < 64).
        .geometries(&[(8, 8), (16, 8)]);
    for w in standard_workloads() {
        builder = builder.workload(&w.name, w.template);
    }
    let grid = builder.build();
    println!(
        "grid: {} scenarios ({} workload cells x 5 backends, all geometry points iso-MAC)",
        grid.scenarios.len(),
        grid.cell_count()
    );
    // 14 workload cells (11 tensor band-cells + 3 loop nests) x 2 scales
    // x 2 geometries x 5 architectures. CI runs this example, so a grid
    // regression fails fast here.
    assert_eq!(grid.scenarios.len(), 280, "expected the 280-cell grid");
    assert_eq!(grid.cell_count(), 56);
    // Cell labels must be collision-free per architecture: a collision
    // would silently merge two cells in every report.
    let mut seen = HashSet::new();
    for s in &grid.scenarios {
        assert!(
            seen.insert((s.cell_label(), s.arch)),
            "duplicate cell {} for {:?}",
            s.cell_label(),
            s.arch
        );
    }

    let store_path = std::env::temp_dir().join("canon_sweep_grid.jsonl");
    let mut store = ResultStore::open(&store_path)?;
    let jobs = std::thread::available_parallelism().map_or(1, |n| n.get());
    let start = std::time::Instant::now();
    let outcome = run_sweep(
        &grid,
        &mut store,
        &SweepOptions {
            jobs,
            ..Default::default()
        },
    )?;
    let s = outcome.stats;
    println!(
        "swept {} cells in {:.2?} on {jobs} threads: {} executed, {} cache hits, {} unsupported, {} errors",
        s.total,
        start.elapsed(),
        s.executed,
        s.cache_hits,
        s.unsupported,
        s.errors
    );
    // The loop-nest columns are the only Unsupported cells: 3 kernels x
    // 2 scales x 2 geometries x 3 tensor-only architectures.
    assert_eq!(s.unsupported, 36, "unexpected Unsupported count");
    assert_eq!(s.errors, 0, "no cell may fail to simulate");
    println!("store: {}\n", store_path.display());
    println!("{}", speedup_table(&outcome.records));
    println!("{}", edp_table(&outcome.records));
    if s.cache_hits == s.total {
        println!(
            "(fully warm store — delete {} to re-simulate)",
            store_path.display()
        );
    } else {
        println!("(run again for a fully cached sweep)");
    }
    Ok(())
}
