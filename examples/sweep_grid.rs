//! Sweep a 100+-cell scenario grid across all five architectures.
//!
//! ```sh
//! cargo run --release --example sweep_grid
//! ```
//!
//! Builds the standard seven workload families (banded SpMM/SDDMM fan out
//! over S1–S3) at two problem scales and two Canon fabric geometries, fans
//! the grid out over all cores, and prints the cross-backend speedup and
//! EDP tables. Run it twice: the second invocation satisfies every cell
//! from the JSONL store and reports cache hits instead of re-simulating.

use canon::sweep::engine::{run_sweep, SweepOptions};
use canon::sweep::report::{edp_table, speedup_table};
use canon::sweep::scenario::{standard_workloads, GridBuilder};
use canon::sweep::store::ResultStore;

fn main() -> std::io::Result<()> {
    let mut builder = GridBuilder::new()
        .scales(&[4, 8]) // quarter- and eighth-scale shapes
        .geometries(&[(8, 8), (16, 16)]); // Table 1 fabric + a scaled Canon
    for w in standard_workloads() {
        builder = builder.workload(&w.name, w.template);
    }
    let grid = builder.build();
    println!(
        "grid: {} scenarios ({} workload cells x backends, incl. 16x16 Canon cells)",
        grid.scenarios.len(),
        grid.cell_count()
    );
    assert!(grid.scenarios.len() > 100, "expected a 100+-cell grid");

    let store_path = std::env::temp_dir().join("canon_sweep_grid.jsonl");
    let mut store = ResultStore::open(&store_path)?;
    let jobs = std::thread::available_parallelism().map_or(1, |n| n.get());
    let start = std::time::Instant::now();
    let outcome = run_sweep(
        &grid,
        &mut store,
        &SweepOptions {
            jobs,
            ..Default::default()
        },
    )?;
    let s = outcome.stats;
    println!(
        "swept {} cells in {:.2?} on {jobs} threads: {} executed, {} cache hits, {} unsupported, {} errors",
        s.total,
        start.elapsed(),
        s.executed,
        s.cache_hits,
        s.unsupported,
        s.errors
    );
    println!("store: {}\n", store_path.display());
    println!("{}", speedup_table(&outcome.records));
    println!("{}", edp_table(&outcome.records));
    if s.cache_hits == s.total {
        println!(
            "(fully warm store — delete {} to re-simulate)",
            store_path.display()
        );
    } else {
        println!("(run again for a fully cached sweep)");
    }
    Ok(())
}
