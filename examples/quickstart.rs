//! Quickstart: run SpMM on the default Canon fabric and inspect the report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use canon::arch::kernels::spmm::{run_spmm, SpmmMapping};
use canon::arch::CanonConfig;
use canon::energy::{canon_energy, edp};
use canon::sparse::{gen, reference, Dense};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 256×256 sparse matrix at 70% sparsity times a dense 256×64 operand.
    let mut rng = gen::seeded_rng(2026);
    let a = gen::random_sparse(256, 256, 0.7, &mut rng);
    let b = Dense::random(256, 64, &mut rng);

    // Table 1 configuration: 8×8 PEs, 4-wide INT8 SIMD, 16-entry scratchpad
    // psum window.
    let cfg = CanonConfig::default();
    let out = run_spmm(&cfg, &SpmmMapping::default(), &a, &b)?;

    // The simulated fabric computes the exact result.
    assert_eq!(out.result, reference::spmm(&a, &b));

    let report = &out.report;
    let energy = canon_energy(report);
    println!("Canon SpMM  (M=256, K=256, N=64, 70% sparse)");
    println!("  cycles              : {}", report.cycles);
    println!(
        "  compute utilization : {:.1}%",
        report.compute_utilization() * 100.0
    );
    println!("  scalar MACs         : {}", report.stats.scalar_macs());
    println!("  FSM transitions     : {}", report.stats.orch_transitions);
    println!("  psum messages       : {}", report.stats.orch_messages);
    println!("  stall cycles        : {}", report.stats.stall_cycles);
    println!("  energy              : {:.1} nJ", energy.total_pj() / 1e3);
    println!(
        "  avg power           : {:.1} mW @ 1 GHz",
        energy.avg_power_mw(report.cycles, 1e9)
    );
    println!(
        "  EDP                 : {:.3e} pJ·s",
        edp(energy.total_pj(), report.cycles, 1e9)
    );
    println!("\nPer-component energy:");
    for (name, pj) in &energy.components {
        println!("  {name:<18} {:.1} nJ", pj / 1e3);
    }
    Ok(())
}
