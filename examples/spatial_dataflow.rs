//! Appendix D: using Canon as a classical spatial (place-and-route) fabric.
//!
//! Configures a 1×4 pipeline that computes `y = ((x·3) + 5) · 2 − 1`
//! spatially — each PE holds one instruction and data streams through at one
//! element per cycle, exactly like a statically-configured CGRA.
//!
//! ```sh
//! cargo run --release --example spatial_dataflow
//! ```

use canon::arch::isa::{Addr, Direction, Instruction, Opcode, Vector};
use canon::arch::kernels::spatial::{run_spatial, SpatialProgram};
use canon::arch::noc::TaggedVector;
use canon::arch::CanonConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = CanonConfig {
        rows: 1,
        cols: 4,
        dmem_words: 8,
        spad_entries: 4,
        ..CanonConfig::default()
    };
    // PE 0: t0 = x * 3        (x streamed from the north edge)
    // PE 1: t1 = t0 + 5
    // PE 2: t2 = t1 * 2
    // PE 3: y  = t2 - 1       (exits the east edge)
    let stage = |op, operand_dir| {
        Instruction::new(
            op,
            Addr::Port(operand_dir),
            Addr::DataMem(0),
            Addr::Port(Direction::East),
        )
    };
    let program = SpatialProgram {
        grid: vec![vec![
            stage(Opcode::Mul, Direction::North),
            stage(Opcode::Add, Direction::West),
            stage(Opcode::Mul, Direction::West),
            stage(Opcode::Sub, Direction::West),
        ]],
        preload: vec![
            (0, 0, 0, vec![Vector::splat(3)]),
            (0, 1, 0, vec![Vector::splat(5)]),
            (0, 2, 0, vec![Vector::splat(2)]),
            (0, 3, 0, vec![Vector::splat(1)]),
        ],
    };

    let inputs = 12;
    let feed: Vec<TaggedVector> = (1..=inputs)
        .map(|i| TaggedVector {
            value: Vector::splat(i),
            tag: i as u32,
        })
        .collect();
    let out = run_spatial(&cfg, &program, vec![feed], inputs as usize + 16)?;

    let f = |x: i32| ((x * 3) + 5) * 2 - 1;
    let expected: Vec<i32> = (1..=inputs).map(f).collect();
    let got: Vec<i32> = out
        .east
        .iter()
        .map(|e| e.value.lane0())
        .filter(|v| expected.contains(v))
        .collect();
    assert_eq!(got, expected, "pipeline results after warm-up");

    println!("spatial pipeline y = ((x*3)+5)*2-1 over {inputs} inputs");
    println!(
        "  cycles (incl. {}-cycle configuration phase): {}",
        cfg.cols * cfg.pipe_depth,
        out.report.cycles
    );
    println!("  outputs: {got:?}");
    println!(
        "  steady-state throughput: 1 element/cycle across {} PEs",
        cfg.cols
    );
    Ok(())
}
