//! Sparse attention on Canon: unstructured SDDMM vs sliding-window SDDMM,
//! compared against the dense-fallback baselines.
//!
//! This is the workload the paper's introduction motivates: attention score
//! computation (`QKᵀ` under an output mask) where the mask is either learned
//! (unstructured) or a Longformer/Mistral-style sliding window.
//!
//! ```sh
//! cargo run --release --example sparse_attention
//! ```

use canon::arch::kernels::sddmm::{run_sddmm, SddmmMapping};
use canon::arch::kernels::window::{run_window_attention, WindowAttention};
use canon::arch::CanonConfig;
use canon::baselines::{Accelerator, SystolicArray, ZedAccelerator};
use canon::sparse::{gen, reference, Dense};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = CanonConfig::default();
    let seq = 128;
    let head_dim = 64;

    // --- Unstructured sparse attention (SDDMM-U) -------------------------
    let mut rng = gen::seeded_rng(7);
    let q = Dense::random(seq, head_dim, &mut rng);
    let k = Dense::random(seq, head_dim, &mut rng);
    let mask = gen::random_mask(seq, seq, 0.8, &mut rng);
    let out = run_sddmm(&cfg, &SddmmMapping::default(), &mask, &q, &k)?;
    assert_eq!(out.result, reference::sddmm(&mask, &q, &k));
    println!("SDDMM-U (seq={seq}, head_dim={head_dim}, 80% sparse mask)");
    println!(
        "  Canon   : {:>8} cycles, utilization {:.1}%",
        out.report.cycles,
        out.report.compute_utilization() * 100.0
    );
    let sys = SystolicArray::default().sddmm(&mask, head_dim).unwrap();
    println!(
        "  Systolic: {:>8} cycles (dense fallback), utilization {:.1}%",
        sys.cycles,
        sys.utilization() * 100.0
    );
    let zed = ZedAccelerator::default().sddmm(&mask, head_dim).unwrap();
    println!(
        "  ZeD     : {:>8} cycles, utilization {:.1}%",
        zed.cycles,
        zed.utilization() * 100.0
    );

    // --- Sliding-window attention (SDDMM-Win) -----------------------------
    let wa = WindowAttention {
        seq: 128,
        window: 16,
        head_dim: 64,
    };
    let win = run_window_attention(&cfg, &SddmmMapping::default(), &wa, 11)?;
    println!(
        "\nSDDMM-Win (seq={}, window={}, {:.0}% sparse band)",
        wa.seq,
        wa.window,
        wa.mask_sparsity() * 100.0
    );
    println!(
        "  Canon   : {:>8} cycles, utilization {:.1}%",
        win.report.cycles,
        win.report.compute_utilization() * 100.0
    );
    let sys_win = SystolicArray::default()
        .window_attention(wa.seq, wa.window, wa.head_dim)
        .unwrap();
    println!(
        "  Systolic: {:>8} cycles (sliding-chunk dense decomposition)",
        sys_win.cycles
    );
    println!(
        "\nCanon exploits the band directly; the dense baselines pay for the\n\
         full chunked score matrix — the SDDMM-Win gap of Fig 12."
    );
    Ok(())
}
